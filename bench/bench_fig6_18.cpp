// Fig. 6.18: normalized EDP of the seven reported SPLASH-2 benchmarks for
// Decode, SimpleALU and ComplexALU -- SynTS (online), No-TS and Nominal,
// all normalized to SynTS (offline). Fixed theta weighting energy and
// execution time equally.
//
// Headline numbers reproduced here:
//   * online-vs-offline SynTS overhead ~10.3% EDP on average,
//   * online SynTS beats No-TS and Nominal on every benchmark and stage,
//   * EDP reduction vs Per-core TS up to 26% / 25% / 7.5% for
//     Decode / SimpleALU / ComplexALU (abstract), up to 55% vs No-TS
//     (conclusion).
//
// Runs on the experiment runtime: the 7 benchmarks x 3 stages x 5 policies
// grid is one batched sweep on the thread pool; each (benchmark, stage)
// characterization happens once (cache) instead of once per stage loop
// iteration. Every cell's equal-weight run is bit-identical to the serial
// run_all_policies path.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "runtime/sweep.h"
#include "util/statistics.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::policy_kind;

    bench::banner("Fig. 6.18",
                  "Normalized EDP per benchmark and stage (vs SynTS offline)");

    const circuit::pipe_stage stages[] = {circuit::pipe_stage::decode,
                                          circuit::pipe_stage::simple_alu,
                                          circuit::pipe_stage::complex_alu};

    runtime::sweep_spec spec;
    {
        const auto reported = workload::reported_benchmarks();
        spec.benchmarks.assign(reported.begin(), reported.end());
        spec.stages.assign(std::begin(stages), std::end(stages));
        const auto all = core::all_policies();
        spec.policies.assign(all.begin(), all.end());
    }

    runtime::thread_pool pool;
    runtime::sweep_scheduler scheduler(pool, runtime::experiment_cache::process_cache());
    const runtime::sweep_result result = scheduler.run(spec);

    util::running_stats online_overhead;
    struct stage_gain {
        double best_vs_per_core = 0.0;
        double best_vs_no_ts = 0.0;
    };
    stage_gain gains[3];
    bool online_always_best = true;

    for (std::size_t s = 0; s < 3; ++s) {
        std::printf("  (%zu) %s\n", s + 1, circuit::pipe_stage_name(stages[s]));
        util::text_table table({"benchmark", "SynTS(online)", "No TS", "Nominal",
                                "PerCore TS", "online gain vs PerCore (%)"});

        for (const auto id : workload::reported_benchmarks()) {
            const auto edp_of = [&](policy_kind kind) {
                return result.find(id, stages[s], kind)->equal_weight.sum.edp();
            };
            const double offline_edp = edp_of(policy_kind::synts_offline);
            const double online_edp = edp_of(policy_kind::synts_online);
            const double no_ts_edp = edp_of(policy_kind::no_ts);
            const double nominal_edp = edp_of(policy_kind::nominal);
            const double per_core_edp = edp_of(policy_kind::per_core_ts);

            table.begin_row();
            table.cell(std::string(workload::benchmark_name(id)));
            table.cell(online_edp / offline_edp, 3);
            table.cell(no_ts_edp / offline_edp, 3);
            table.cell(nominal_edp / offline_edp, 3);
            table.cell(per_core_edp / offline_edp, 3);
            const double gain_pc = 100.0 * (1.0 - online_edp / per_core_edp);
            table.cell(gain_pc, 1);

            online_overhead.add(100.0 * (online_edp / offline_edp - 1.0));
            gains[s].best_vs_per_core = std::max(gains[s].best_vs_per_core, gain_pc);
            gains[s].best_vs_no_ts = std::max(
                gains[s].best_vs_no_ts, 100.0 * (1.0 - online_edp / no_ts_edp));
            online_always_best =
                online_always_best && online_edp < no_ts_edp && online_edp < nominal_edp;
        }
        std::printf("%s\n", table.render(4).c_str());
    }

    bench::compare_line("online vs offline SynTS EDP overhead, average (%)",
                        online_overhead.mean(), 10.3, 1);
    bench::compare_line("best EDP gain vs Per-core TS, Decode (%)",
                        gains[0].best_vs_per_core, 26.0, 1);
    bench::compare_line("best EDP gain vs Per-core TS, SimpleALU (%)",
                        gains[1].best_vs_per_core, 25.0, 1);
    bench::compare_line("best EDP gain vs Per-core TS, ComplexALU (%)",
                        gains[2].best_vs_per_core, 7.5, 1);
    const double best_no_ts = std::max(
        {gains[0].best_vs_no_ts, gains[1].best_vs_no_ts, gains[2].best_vs_no_ts});
    bench::compare_line("best EDP gain vs No-TS, any stage (%)", best_no_ts, 55.0, 1);
    std::printf("  SynTS(online) beats No-TS and Nominal on all 7x3 cases: %s\n",
                online_always_best ? "yes" : "NO");
    std::printf("  runtime: %zu cells on %zu workers in %.2f s "
                "(characterizations: %llu, cache hits: %llu)\n\n",
                result.cells.size(), pool.worker_count(), result.wall_seconds,
                static_cast<unsigned long long>(result.cache_misses),
                static_cast<unsigned long long>(result.cache_hits));
    return 0;
}
