// Microbenchmark: online-estimator cost per barrier interval -- the
// software-side overhead of SynTS-online (the hardware overhead is covered
// by bench_sec6_3).

#include <benchmark/benchmark.h>

#include "core/config_space.h"
#include "core/online_estimator.h"
#include "util/rng.h"

namespace {

using namespace synts::core;

interval_characterization make_interval(std::size_t instructions, std::uint64_t seed)
{
    interval_characterization data;
    data.instruction_count = instructions;
    synts::util::xoshiro256 rng(seed);
    for (std::size_t n = 0; n < instructions; ++n) {
        const double delay = rng.bernoulli(0.05) ? 950.0 : rng.uniform(100.0, 400.0);
        data.sampling_delays_ps.push_back(static_cast<float>(delay));
        data.sampling_instr_index.push_back(static_cast<std::uint32_t>(n));
        ++data.vector_count;
    }
    data.delay_histograms.emplace_back(0.0, 1050.0, 64);
    return data;
}

config_space make_space()
{
    return config_space::paper_grid(std::vector<double>{1000.0, 1130.0, 1270.0, 1390.0,
                                                        1630.0, 2210.0, 2630.0});
}

void bm_sample_interval(benchmark::State& state)
{
    const config_space space = make_space();
    const auto data = make_interval(static_cast<std::size_t>(state.range(0)), 7);
    const online_estimator estimator;
    synts::energy::energy_params params;
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimator.sample_interval(space, data, 1.2, params));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) / 10);
}
BENCHMARK(bm_sample_interval)->RangeMultiplier(4)->Range(1000, 256000);

void bm_curve_lookup(benchmark::State& state)
{
    const config_space space = make_space();
    const auto data = make_interval(50000, 9);
    const online_estimator estimator;
    synts::energy::energy_params params;
    const auto sample = estimator.sample_interval(space, data, 1.2, params);
    const auto curve = sample.make_curve(space);
    double r = 0.64;
    for (auto _ : state) {
        benchmark::DoNotOptimize(curve.error_probability(0, r));
        r += 0.001;
        if (r > 1.0) {
            r = 0.64;
        }
    }
}
BENCHMARK(bm_curve_lookup);

} // namespace

BENCHMARK_MAIN();
