// Microbenchmark: circuit-layer throughput -- dynamic timing steps per
// second (the characterization bottleneck) and STA runtime per stage.

#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/dynamic_timing.h"
#include "circuit/netlist_builder.h"
#include "circuit/sta.h"
#include "util/rng.h"

namespace {

using namespace synts::circuit;

const stage_netlist& stage_for(int index)
{
    static const stage_netlist decode = build_decode_stage();
    static const stage_netlist simple = build_simple_alu();
    static const stage_netlist complex_alu = build_complex_alu();
    switch (index) {
    case 0:
        return decode;
    case 1:
        return simple;
    default:
        return complex_alu;
    }
}

void bm_dynamic_timing_step(benchmark::State& state)
{
    const stage_netlist& stage = stage_for(static_cast<int>(state.range(0)));
    const cell_library lib = cell_library::standard_22nm();
    const voltage_model vm(0.04);
    const auto corners = paper_voltage_levels();
    dynamic_timing_simulator sim(stage.nl, lib, vm, corners);

    synts::util::xoshiro256 rng(1);
    const std::size_t width = stage.nl.input_count();
    auto bits = std::make_unique<bool[]>(width);
    std::vector<double> delays(corners.size());

    for (auto _ : state) {
        for (std::size_t i = 0; i < width; ++i) {
            bits[i] = rng.bernoulli(0.5);
        }
        benchmark::DoNotOptimize(
            sim.step(std::span<const bool>(bits.get(), width), delays));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(std::string(pipe_stage_name(static_cast<pipe_stage>(state.range(0)))) +
                   " " + std::to_string(stage.nl.gate_count()) + " gates x 7 corners");
}
BENCHMARK(bm_dynamic_timing_step)->DenseRange(0, 2, 1);

void bm_sta(benchmark::State& state)
{
    const stage_netlist& stage = stage_for(static_cast<int>(state.range(0)));
    const cell_library lib = cell_library::standard_22nm();
    const static_timing_analyzer sta(stage.nl);
    const auto delays = sta.nominal_gate_delays(lib);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sta.analyze(delays));
    }
}
BENCHMARK(bm_sta)->DenseRange(0, 2, 1);

void bm_build_stage(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(build_stage(static_cast<pipe_stage>(state.range(0))));
    }
}
BENCHMARK(bm_build_stage)->DenseRange(0, 2, 1);

} // namespace

BENCHMARK_MAIN();
