// Runtime scaling: wall-clock speedup of the batched sweep scheduler as the
// worker count grows, plus the determinism guarantee that makes the
// parallelism free of risk.
//
// Workload: the acceptance sweep -- a Pareto ladder (default theta
// multipliers) over the paper's 7 reported benchmarks x 3 pipe stages,
// SynTS (offline). Each worker count runs against a FRESH experiment cache,
// so every run pays the full 21 characterizations and the comparison is
// pure scheduling, not cache reuse.
//
// Checks printed at the end:
//   * bit-identity of the scheduler's aggregated results against the serial
//     core::pareto_sweep path (fresh benchmark_experiment per pair, exact
//     double ==, no tolerance);
//   * bit-identity across worker counts;
//   * speedup at each worker count vs 1 worker. The >= 2x target at 4
//     workers requires >= 4 hardware threads -- the bench reports the
//     machine's concurrency so a 1-core container's result is legible.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "runtime/sweep.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::policy_kind;

    bench::banner("Runtime scaling",
                  "sweep wall-clock vs worker count (7 benchmarks x 3 stages)");

    runtime::sweep_spec spec;
    {
        const auto reported = workload::reported_benchmarks();
        spec.benchmarks.assign(reported.begin(), reported.end());
        spec.stages = {circuit::pipe_stage::decode, circuit::pipe_stage::simple_alu,
                       circuit::pipe_stage::complex_alu};
        spec.policies = {policy_kind::synts_offline};
        spec.theta_multipliers = core::default_theta_multipliers();
    }

    // Serial reference: the exact pre-runtime code path -- construct each
    // experiment directly and sweep it, no pool, no cache.
    std::vector<std::vector<core::pareto_point>> serial;
    double serial_seconds = 0.0;
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto& [benchmark, stage] : spec.expanded_pairs()) {
            const core::benchmark_experiment experiment(benchmark, stage, spec.config);
            serial.push_back(core::pareto_sweep(experiment, policy_kind::synts_offline,
                                                spec.theta_multipliers));
        }
        const auto t1 = std::chrono::steady_clock::now();
        serial_seconds = std::chrono::duration<double>(t1 - t0).count();
    }

    const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
    std::vector<runtime::sweep_result> results;
    std::vector<std::uint64_t> steals;
    for (const std::size_t workers : worker_counts) {
        runtime::thread_pool pool(workers);
        runtime::experiment_cache cache; // fresh: no reuse across runs
        runtime::sweep_scheduler scheduler(pool, cache);
        results.push_back(scheduler.run(spec));
        steals.push_back(pool.steal_count());
    }

    // Bit-identity: scheduler cells vs the serial path, exact ==.
    bool identical_to_serial = true;
    for (const runtime::sweep_result& result : results) {
        for (std::size_t p = 0; p < serial.size(); ++p) {
            const auto& cell = result.cells[p]; // one policy -> cell index = pair index
            for (std::size_t i = 0; i < serial[p].size(); ++i) {
                identical_to_serial = identical_to_serial &&
                                      cell.pareto[i].theta == serial[p][i].theta &&
                                      cell.pareto[i].energy == serial[p][i].energy &&
                                      cell.pareto[i].time == serial[p][i].time;
            }
        }
    }

    const double base_seconds = results.front().wall_seconds;
    util::text_table table({"workers", "wall (s)", "speedup vs 1", "efficiency (%)",
                            "steals", "characterizations"});
    for (std::size_t i = 0; i < worker_counts.size(); ++i) {
        table.begin_row();
        table.cell(static_cast<long long>(worker_counts[i]));
        table.cell(results[i].wall_seconds, 3);
        table.cell(base_seconds / results[i].wall_seconds, 2);
        table.cell(100.0 * base_seconds / results[i].wall_seconds /
                       static_cast<double>(worker_counts[i]),
                   1);
        table.cell(static_cast<long long>(steals[i]));
        table.cell(static_cast<long long>(results[i].cache_misses));
    }
    std::printf("%s\n", table.render().c_str());

    const double speedup_at_4 = base_seconds / results[2].wall_seconds;
    std::printf("  hardware threads: %u, serial (no runtime) baseline: %.3f s\n",
                std::thread::hardware_concurrency(), serial_seconds);
    std::printf("  speedup at 4 workers vs 1 worker: %.2fx (target >= 2x, needs >= 4 "
                "hardware threads)\n",
                speedup_at_4);
    std::printf("  scheduler results bit-identical to serial pareto_sweep: %s\n",
                identical_to_serial ? "yes" : "NO");
    bench::note("every run above re-characterized all 21 pairs from scratch; within");
    bench::note("one process the cache makes repeat sweeps ~free (see fig benches).");
    std::printf("\n");
    return identical_to_serial ? 0 : 1;
}
