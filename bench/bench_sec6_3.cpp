// Section 6.3: optimization overhead of SynTS-online. The paper
// synthesizes the IVM pipe stages (45 nm FreePDK) and reports the SynTS
// hardware additions at ~3.41% of core power and ~2.7% of core area.

#include <cstdio>

#include "bench_common.h"
#include "circuit/netlist_builder.h"
#include "core/config_space.h"
#include "energy/synthesis_report.h"
#include "util/table.h"

int main()
{
    using namespace synts;

    bench::banner("Section 6.3", "SynTS-online hardware overhead (power/area)");

    const auto lib = circuit::cell_library::standard_22nm();
    const auto decode = circuit::build_decode_stage();
    const auto simple = circuit::build_simple_alu();
    const auto complex_alu = circuit::build_complex_alu();
    const std::array<const circuit::netlist*, 3> stages = {&decode.nl, &simple.nl,
                                                           &complex_alu.nl};

    const std::size_t tsr_levels = core::config_space::default_tsr_levels().size();
    const auto blocks = energy::synts_online_blocks(tsr_levels);

    util::text_table inventory({"block", "DFFs", "comb gates"});
    for (const auto& b : blocks) {
        inventory.begin_row();
        inventory.cell(b.name);
        inventory.cell(static_cast<long long>(b.dff_count));
        inventory.cell(static_cast<long long>(b.comb_gate_count));
    }
    std::printf("%s\n", inventory.render().c_str());

    const auto report = energy::estimate_synts_overhead(lib, stages, tsr_levels);
    std::printf("  SynTS additions: %.1f um^2, %.1f uW\n",
                report.synts_additions.area_um2, report.synts_additions.power_uw);
    std::printf("  core reference:  %.1f um^2, %.1f uW (3 stages + registers, x14)\n",
                report.core.area_um2, report.core.power_uw);
    bench::compare_line("power overhead (% of core)", report.power_percent, 3.41, 2);
    bench::compare_line("area overhead (% of core)", report.area_percent, 2.70, 2);
    bench::note("Paper: 'the power overhead is around 3.41% ... the area overhead");
    bench::note("of SynTS (online) is even smaller, at 2.7%.'");
    std::printf("\n");
    return 0;
}
