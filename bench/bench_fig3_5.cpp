// Fig. 3.5: timing error probability versus normalized clock period for one
// barrier interval of Radix -- thread 0 is consistently the worst, about 4x
// the thread with the lowest error probability.

#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "util/table.h"

int main()
{
    using namespace synts;

    bench::banner("Fig. 3.5",
                  "Error probability vs normalized clock period, Radix, 1 interval");

    core::experiment_config cfg;
    const core::benchmark_experiment experiment(workload::benchmark_id::radix,
                                                circuit::pipe_stage::simple_alu, cfg);

    util::text_table table({"r", "T0", "T1", "T2", "T3", "T0/min"});
    double worst_ratio = 0.0;
    for (double r = 1.0; r >= 0.60; r -= 0.04) {
        table.begin_row();
        table.cell(r, 2);
        double t0 = 0.0;
        double min_err = 1.0;
        for (std::size_t t = 0; t < 4; ++t) {
            const double e = experiment.error_model(t, 0).error_probability(0, r);
            table.cell(e, 4);
            if (t == 0) {
                t0 = e;
            }
            min_err = std::min(min_err, e);
        }
        const double ratio = min_err > 0.0 ? t0 / min_err : 0.0;
        table.cell(ratio, 2);
        worst_ratio = std::max(worst_ratio, ratio);
        if (ratio == 0.0) {
            // Below the error onset everywhere; keep rows informative.
        }
    }
    std::printf("%s\n", table.render().c_str());

    const double t0_deep = experiment.error_model(0, 0).error_probability(0, 0.64);
    const double t3_deep = experiment.error_model(3, 0).error_probability(0, 0.64);
    bench::compare_line("T0 / lowest-thread error ratio at deep speculation",
                        t3_deep > 0 ? t0_deep / t3_deep : 0.0, 4.0, 1);
    bench::note("Paper: 'Thread 0 consistently has the highest error probability...");
    bench::note("about 4x greater than the thread with the lowest error probability.'");
    std::printf("\n");
    return 0;
}
