// Fig. 5.10: Hamming-distance bar graphs for the vector ALUs of the
// HD 7970 SIMD unit. The paper shows 6 of 16 VALUs over 16k instructions
// (the rest evaluated over 100k) -- all qualitatively identical, implying
// homogeneous error probabilities, so the GPGPU case needs no SynTS.

#include <cstdio>

#include "bench_common.h"
#include "gpgpu/hamming.h"
#include "gpgpu/kernels.h"
#include "util/table.h"

int main()
{
    using namespace synts;

    bench::banner("Fig. 5.10", "VALU output Hamming-distance histograms, HD 7970");

    double worst_kernel_tvd = 0.0;
    util::text_table summary(
        {"kernel", "instructions/VALU", "mean Hamming", "max pairwise TVD",
         "homogeneous"});

    for (const auto kernel : gpgpu::all_gpgpu_kernels()) {
        const auto traces =
            gpgpu::execute_kernel(kernel, gpgpu::hd7970_valu_count, 16000, 42);
        const auto report = gpgpu::analyze_homogeneity(traces);
        const auto hist0 = gpgpu::hamming_histogram(traces[0]);

        summary.begin_row();
        summary.cell(std::string(gpgpu::gpgpu_kernel_name(kernel)));
        summary.cell(static_cast<long long>(traces[0].size()));
        summary.cell(hist0.mean(), 2);
        summary.cell(report.max_tvd, 4);
        summary.cell(std::string(report.is_homogeneous() ? "yes" : "NO"));
        worst_kernel_tvd = std::max(worst_kernel_tvd, report.max_tvd);
    }
    std::printf("%s\n", summary.render().c_str());

    // Render the first 6 VALUs of MatrixMult as ASCII bar graphs, matching
    // the figure's layout.
    const auto traces = gpgpu::execute_kernel(gpgpu::gpgpu_kernel::matrixmult,
                                              gpgpu::hd7970_valu_count, 16000, 42);
    for (std::size_t v = 0; v < 6; ++v) {
        std::printf("  Vector ALU %zu (Hamming distance 0..32):\n", v);
        const auto hist = gpgpu::hamming_histogram(traces[v]);
        // Compact rendering: bucket pairs to keep the graph small.
        std::string bars;
        std::uint64_t peak = 1;
        for (std::size_t d = 0; d <= 32; ++d) {
            peak = std::max(peak, hist.count_at(d));
        }
        for (std::size_t d = 0; d <= 32; d += 2) {
            const std::uint64_t count = hist.count_at(d) + (d + 1 <= 32 ? hist.count_at(d + 1) : 0);
            const auto width = static_cast<std::size_t>(
                40.0 * static_cast<double>(count) / static_cast<double>(2 * peak));
            std::printf("    %2zu-%2zu %s\n", d, std::min<std::size_t>(d + 1, 32),
                        std::string(width, '#').c_str());
        }
    }

    std::printf("\n");
    bench::note("Paper conclusion: 'Similar hamming distance means ... homogeneity");
    bench::note("in error probabilities. Hence, per-core timing speculation will");
    bench::note("work just fine for this particular architecture and workload.'");
    std::printf("  worst cross-VALU total-variation distance over 9 kernels: %.4f\n",
                worst_kernel_tvd);
    std::printf("  homogeneity threshold: 0.08 -> GPGPU case is homogeneous: %s\n\n",
                worst_kernel_tvd <= 0.08 ? "yes" : "NO");
    return 0;
}
