#!/usr/bin/env bash
# CLI contract tests for synts_runner, invoked from CTest as
#   test_runner_cli.sh <path-to-synts_runner>
#
# Pins the argument-parsing hardening (each bad invocation must produce a
# one-line usage error on stderr and exit 2 -- never a crash or a silent
# default) and the registry surface: --list-benchmarks enumerates the ten
# SPLASH-2 profiles plus the scenario families, scenario sweeps run through
# the full three-tier cache, and a warm re-run is byte-identical with zero
# program-tier computes.
set -u

RUNNER=${1:?usage: test_runner_cli.sh <synts_runner>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
failures=0

# expect_usage_error <name> <args...>: exit code 2 + a usage error naming
# the problem on stderr's first line.
expect_usage_error() {
    local name=$1
    shift
    local stderr_file="$WORK/$name.err"
    "$RUNNER" "$@" >/dev/null 2>"$stderr_file"
    local rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "FAIL $name: expected exit 2, got $rc" >&2
        failures=$((failures + 1))
        return
    fi
    if ! head -n1 "$stderr_file" | grep -q '^synts_runner: '; then
        echo "FAIL $name: no one-line error on stderr:" >&2
        head -n3 "$stderr_file" >&2
        failures=$((failures + 1))
        return
    fi
    echo "ok $name"
}

# Unknown benchmark name (both spellings, both flag forms).
expect_usage_error unknown_benchmark --benchmarks=nonesuch
expect_usage_error unknown_benchmark_space --benchmark nonesuch
# --jobs 0 / --workers=0: a zero-width pool is a typo, not "default".
expect_usage_error jobs_zero_eq --jobs=0
expect_usage_error jobs_zero_space --jobs 0
expect_usage_error workers_zero --workers=0
# Non-numeric and partially-numeric counts are rejected, not truncated.
expect_usage_error jobs_garbage --jobs=abc
expect_usage_error jobs_trailing --jobs=4x
expect_usage_error cores_zero --cores=0
# Negative and whitespace-prefixed tokens must not wrap through stoull
# (--workers=-1 would otherwise try to spawn 2^64 threads).
expect_usage_error workers_negative --workers=-1
expect_usage_error seed_negative --seed=-1
expect_usage_error cores_whitespace --cores=' 2'
# A value flag at the end of the line must not read past argv.
expect_usage_error missing_value --benchmarks
# --resume without --store has no checkpoint source.
expect_usage_error resume_without_store --resume
# Unknown flags still fail loudly.
expect_usage_error unknown_flag --frobnicate
# --define grammar errors are usage errors, not crashes.
expect_usage_error define_unknown_family --define=nosuch:name=x
expect_usage_error define_missing_name --define=lock_ladder:rungs=3
expect_usage_error define_unknown_param --define=lock_ladder:name=x,frob=1
expect_usage_error define_bad_value --define=lock_ladder:name=x,rungs=abc
expect_usage_error define_family_validation --define=lock_ladder:name=x,base_contention=1.5
# --shard hardening: needs a store, strict I/N with I < N, exclusive with
# --merge.
expect_usage_error shard_without_store --shard=0/2
expect_usage_error shard_malformed --store=ignored --shard=zero/2
expect_usage_error shard_out_of_range --store=ignored --shard=2/2
expect_usage_error merge_without_store --merge
expect_usage_error merge_with_shard --store=ignored --merge --shard=0/2
expect_usage_error merge_with_resume --store=ignored --merge --resume
# Telemetry flag hardening: bad --metrics format, --trace without a value.
expect_usage_error metrics_bad_format --metrics=xml
expect_usage_error trace_missing_value --trace
# --sample grammar: a positive period, an optional non-empty :FILE suffix.
expect_usage_error sample_zero --sample=0
expect_usage_error sample_garbage --sample=abc
expect_usage_error sample_empty_file --sample=100:
expect_usage_error stall_ms_zero --stall-ms=0
# --speculate: zero in-flight speculations is a typo (the bare flag means
# 1), junk must not parse, and --merge computes nothing to speculate on.
expect_usage_error speculate_zero --speculate=0
expect_usage_error speculate_garbage --speculate=abc
expect_usage_error speculate_trailing --speculate=2x
expect_usage_error speculate_with_merge --store=ignored --merge --speculate

# --list-benchmarks: the ten SPLASH-2 names plus the scenario families.
LIST="$WORK/list.txt"
if "$RUNNER" --list-benchmarks >"$LIST" 2>&1; then
    ok=1
    for name in FMM Radix Lu-Contig Lu-nContig FFT Water-sp Barnes Raytrace \
                Cholesky Ocean lock_ladder pipeline graph_walk; do
        if ! grep -qx "$name" "$LIST"; then
            echo "FAIL list_benchmarks: missing $name" >&2
            ok=0
        fi
    done
    if [ "$(wc -l <"$LIST")" -lt 13 ]; then
        echo "FAIL list_benchmarks: fewer than 13 workloads listed" >&2
        ok=0
    fi
    if [ "$ok" -eq 1 ]; then echo "ok list_benchmarks"; else failures=$((failures + 1)); fi
else
    echo "FAIL list_benchmarks: non-zero exit" >&2
    failures=$((failures + 1))
fi

# A scenario-family sweep runs end to end through the three-tier cache:
# cold run populates the store, the warm re-run must do zero program-tier
# computes and emit byte-identical JSON.
STORE="$WORK/store"
COLD="$WORK/cold.json"
WARM="$WORK/warm.json"
STATS="$WORK/stats.json"
if "$RUNNER" --benchmarks=lock_ladder --stages=simple_alu --policies=nominal,synts_offline \
        --store="$STORE" --quiet --json="$COLD" >/dev/null 2>&1 &&
   "$RUNNER" --benchmarks=lock_ladder --stages=simple_alu --policies=nominal,synts_offline \
        --store="$STORE" --quiet --json="$WARM" --cache-stats=json >"$STATS" 2>&1; then
    ok=1
    # The volatile `meta` line (timestamp, host) is excluded from the
    # byte-identity contract by design: it rides on its own line.
    if ! cmp -s <(grep -v '"meta"' "$COLD") <(grep -v '"meta"' "$WARM"); then
        echo "FAIL scenario_sweep: warm JSON differs from cold" >&2
        ok=0
    fi
    if ! grep -q '"meta": {"schema_version": 1, "generated_utc": "' "$COLD"; then
        echo "FAIL scenario_sweep: cold JSON carries no meta stamp" >&2
        ok=0
    fi
    if ! grep -q '"program_computes": 0' "$STATS"; then
        echo "FAIL scenario_sweep: warm run recomputed program artifacts:" >&2
        cat "$STATS" >&2
        ok=0
    fi
    if ! grep -q '"benchmark": "lock_ladder"' "$COLD"; then
        echo "FAIL scenario_sweep: JSON does not carry the workload name" >&2
        ok=0
    fi
    if [ "$ok" -eq 1 ]; then echo "ok scenario_sweep_warm_store"; else failures=$((failures + 1)); fi
else
    echo "FAIL scenario_sweep: runner exited non-zero" >&2
    failures=$((failures + 1))
fi

# --speculate must never change a single output byte: the same ladder
# sweep with and without idle-worker speculation emits identical JSON
# (modulo the volatile meta line), and the speculated run reports its
# spec stats on stdout.
SPEC_DEFS="--define=lock_ladder:name=cli_spec_1,base_contention=0.3 \
  --define=lock_ladder:name=cli_spec_2,base_contention=0.5"
SPEC_ARGS="--benchmarks=cli_spec_1,cli_spec_2 --stages=simple_alu --policies=nominal,synts_offline"
PLAIN="$WORK/plain.json"
SPECULATED="$WORK/speculated.json"
SPEC_OUT="$WORK/speculated.out"
if "$RUNNER" $SPEC_DEFS $SPEC_ARGS --quiet --json="$PLAIN" >/dev/null 2>&1 &&
   "$RUNNER" $SPEC_DEFS $SPEC_ARGS --speculate=2 --json="$SPECULATED" >"$SPEC_OUT" 2>&1; then
    ok=1
    if ! cmp -s <(grep -v '"meta"' "$PLAIN") <(grep -v '"meta"' "$SPECULATED"); then
        echo "FAIL speculate_identity: speculated JSON differs from plain run" >&2
        ok=0
    fi
    if ! grep -q '^speculation: .* launched, .* hits' "$SPEC_OUT"; then
        echo "FAIL speculate_identity: no speculation stats line on stdout:" >&2
        tail -n5 "$SPEC_OUT" >&2
        ok=0
    fi
    if [ "$ok" -eq 1 ]; then echo "ok speculate_byte_identical"; else failures=$((failures + 1)); fi
else
    echo "FAIL speculate_identity: a runner invocation exited non-zero" >&2
    failures=$((failures + 1))
fi

# Sharded sweeps: a --define'd instance is sweepable without recompiling,
# two shard processes share one store, --merge assembles JSON byte-identical
# to the single-process run, and shard bookkeeping rejects misuse with
# exit 2.
DEFINE="--define=lock_ladder:name=ll_cli,base_contention=0.4,rungs=6"
SHARD_SPEC="$DEFINE --benchmarks=lock_ladder,ll_cli --stages=simple_alu --policies=nominal"
SHARD_STORE="$WORK/shard-store"
SINGLE="$WORK/single.json"
MERGED="$WORK/merged.json"
if "$RUNNER" $SHARD_SPEC --quiet --json="$SINGLE" >/dev/null 2>&1 &&
   "$RUNNER" $SHARD_SPEC --store="$SHARD_STORE" --shard=0/2 --quiet >/dev/null 2>&1 &&
   "$RUNNER" $SHARD_SPEC --store="$SHARD_STORE" --shard=1/2 --quiet >/dev/null 2>&1 &&
   "$RUNNER" $SHARD_SPEC --store="$SHARD_STORE" --merge --quiet --json="$MERGED" >/dev/null 2>&1; then
    ok=1
    if ! cmp -s <(grep -v '"meta"' "$SINGLE") <(grep -v '"meta"' "$MERGED"); then
        echo "FAIL shard_merge: merged JSON differs from single-process run" >&2
        ok=0
    fi
    if ! grep -q '"benchmark": "ll_cli"' "$MERGED"; then
        echo "FAIL shard_merge: defined instance missing from merged JSON" >&2
        ok=0
    fi
    if [ "$ok" -eq 1 ]; then echo "ok shard_merge_byte_identical"; else failures=$((failures + 1)); fi
else
    echo "FAIL shard_merge: a shard/merge invocation exited non-zero" >&2
    failures=$((failures + 1))
fi
# --status over the completed two-shard store: both shards complete, 100%.
STATUS="$WORK/status.txt"
if "$RUNNER" --status="$SHARD_STORE" >"$STATUS" 2>&1; then
    ok=1
    if ! grep -q 'shard 0/2: .* complete' "$STATUS" ||
       ! grep -q 'shard 1/2: .* complete' "$STATUS"; then
        echo "FAIL status: shards not reported complete:" >&2
        cat "$STATUS" >&2
        ok=0
    fi
    if ! grep -q 'total: .*(100.0%)' "$STATUS"; then
        echo "FAIL status: total is not 100.0%:" >&2
        cat "$STATUS" >&2
        ok=0
    fi
    if [ "$ok" -eq 1 ]; then echo "ok status_fleet_view"; else failures=$((failures + 1)); fi
else
    echo "FAIL status: runner exited non-zero" >&2
    failures=$((failures + 1))
fi
# --trace + --metrics on a tiny sweep: the trace file is Chrome trace-event
# JSON with paired-up "X" spans, and the metrics JSON carries per-tier
# latency percentiles.
TRACE="$WORK/trace.json"
METRICS="$WORK/metrics.json"
if "$RUNNER" --benchmarks=lock_ladder --stages=simple_alu --policies=nominal \
        --quiet --trace="$TRACE" --metrics=json >"$METRICS" 2>&1; then
    ok=1
    if ! grep -q '"traceEvents": \[' "$TRACE"; then
        echo "FAIL trace: no traceEvents array in $TRACE" >&2
        ok=0
    fi
    if ! grep -q '"name": "sweep.run"' "$TRACE" ||
       ! grep -q '"ph": "X"' "$TRACE"; then
        echo "FAIL trace: sweep.run span missing:" >&2
        head -n5 "$TRACE" >&2
        ok=0
    fi
    if ! grep -q '"cache.tier2.compute_ns": {"type": "histogram"' "$METRICS"; then
        echo "FAIL metrics: no tier2 compute latency histogram:" >&2
        cat "$METRICS" >&2
        ok=0
    fi
    if ! grep -q '"pool.tasks_executed"' "$METRICS"; then
        echo "FAIL metrics: no pool counters" >&2
        ok=0
    fi
    if [ "$ok" -eq 1 ]; then echo "ok trace_and_metrics"; else failures=$((failures + 1)); fi
else
    echo "FAIL trace_and_metrics: runner exited non-zero" >&2
    failures=$((failures + 1))
fi
# --sample + --metrics=prom on a tiny sweep: the JSONL timeline carries
# tick frames with derived rates, and the prom exposition is OpenMetrics
# text ending in # EOF.
TIMELINE="$WORK/timeline.jsonl"
PROM="$WORK/metrics.prom"
if "$RUNNER" --benchmarks=lock_ladder --stages=simple_alu --policies=nominal \
        --quiet --sample=20:"$TIMELINE" --metrics=prom >"$PROM" 2>&1; then
    ok=1
    if ! grep -q '"tick": 0' "$TIMELINE" ||
       ! grep -q '"t_ns": ' "$TIMELINE" ||
       ! grep -q '"metrics": {' "$TIMELINE"; then
        echo "FAIL sample: timeline lacks tick frames:" >&2
        head -n2 "$TIMELINE" >&2
        ok=0
    fi
    if ! grep -q '"rates_per_s": {"' "$TIMELINE"; then
        echo "FAIL sample: no tick carries a derived rate" >&2
        ok=0
    fi
    if ! grep -q '^# TYPE synts_sweep_cells_computed counter$' "$PROM" ||
       ! grep -q '^synts_sweep_cells_computed_total ' "$PROM"; then
        echo "FAIL prom: sweep counter missing from exposition:" >&2
        head -n10 "$PROM" >&2
        ok=0
    fi
    if ! grep -q '{quantile="0.99"} ' "$PROM" || ! grep -qx '# EOF' "$PROM"; then
        echo "FAIL prom: no summary quantiles or missing # EOF terminator" >&2
        ok=0
    fi
    if [ "$ok" -eq 1 ]; then echo "ok sample_timeline_and_prom"; else failures=$((failures + 1)); fi
else
    echo "FAIL sample_timeline_and_prom: runner exited non-zero" >&2
    failures=$((failures + 1))
fi
# --watch over the completed two-shard store: one tick, all complete, exit 0.
WATCH_DONE="$WORK/watch_done.txt"
"$RUNNER" --watch="$SHARD_STORE" --sample=50 >"$WATCH_DONE" 2>&1
rc=$?
if [ "$rc" -eq 0 ] && grep -q 'complete' "$WATCH_DONE" &&
   grep -q 'total: .*(100.0%)' "$WATCH_DONE"; then
    echo "ok watch_complete_fleet"
else
    echo "FAIL watch_complete_fleet: rc=$rc:" >&2
    cat "$WATCH_DONE" >&2
    failures=$((failures + 1))
fi
# Kill-one-shard stall detection: shard 0 completes, shard 1 is killed
# mid-run right after publishing its first progress frame; its frame then
# ages past --stall-ms (mtimes rewound an hour -- deterministic, no 10 s
# wait) and --watch must report STALLED and exit 3.
STALL_STORE="$WORK/stall-store"
STALL_SPEC="--benchmarks=lock_ladder,pipeline,graph_walk --stages=simple_alu,complex_alu --policies=nominal,synts_offline"
WATCH_STALL="$WORK/watch_stall.txt"
if "$RUNNER" $STALL_SPEC --store="$STALL_STORE" --shard=0/2 --quiet >/dev/null 2>&1; then
    manifest_count() { find "$STALL_STORE" -path '*/manifest/*' -type f | wc -l; }
    base_frames=$(manifest_count)
    "$RUNNER" $STALL_SPEC --store="$STALL_STORE" --shard=1/2 --workers=1 --quiet >/dev/null 2>&1 &
    shard_pid=$!
    for _ in $(seq 1 200); do
        [ "$(manifest_count)" -gt "$base_frames" ] && break
        sleep 0.05
    done
    kill -9 "$shard_pid" 2>/dev/null
    wait "$shard_pid" 2>/dev/null
    find "$STALL_STORE" -type f -exec touch -d '1 hour ago' {} +
    "$RUNNER" --watch="$STALL_STORE" --sample=50 >"$WATCH_STALL" 2>&1
    rc=$?
    if [ "$rc" -eq 3 ] && grep -q 'STALLED (age ' "$WATCH_STALL"; then
        echo "ok watch_detects_killed_shard"
    else
        echo "FAIL watch_detects_killed_shard: rc=$rc (want 3):" >&2
        cat "$WATCH_STALL" >&2
        failures=$((failures + 1))
    fi
else
    echo "FAIL watch_detects_killed_shard: shard 0 run exited non-zero" >&2
    failures=$((failures + 1))
fi
# Overlapping partition of the recorded spec: refused, exit 2.
"$RUNNER" $SHARD_SPEC --store="$SHARD_STORE" --shard=0/3 --quiet >/dev/null 2>"$WORK/overlap.err"
rc=$?
if [ "$rc" -eq 2 ] && grep -q 'layout conflict' "$WORK/overlap.err"; then
    echo "ok shard_overlap_refused"
else
    echo "FAIL shard_overlap: expected exit 2 + layout conflict, got rc=$rc" >&2
    failures=$((failures + 1))
fi
# Merging a spec the store never sharded (foreign spec): refused, exit 2.
"$RUNNER" $SHARD_SPEC --policies=nominal,no_ts --store="$SHARD_STORE" --merge --quiet >/dev/null 2>&1
rc=$?
if [ "$rc" -eq 2 ]; then
    echo "ok merge_foreign_spec_refused"
else
    echo "FAIL merge_foreign_spec: expected exit 2, got $rc" >&2
    failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures CLI contract failure(s)" >&2
    exit 1
fi
echo "all CLI contract tests passed"
