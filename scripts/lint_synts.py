#!/usr/bin/env python3
"""Repo-specific lint rules for the SynTS tree.

Each rule encodes a convention this codebase has been burned by (or would
be):

  raw-mutex       -- std::mutex / std::shared_mutex / std::lock_guard /
                     std::unique_lock / std::scoped_lock anywhere in src/
                     outside util/thread_safety.h. Raw primitives bypass
                     both the Clang thread-safety annotations and the debug
                     lock-rank detector; use util::annotated_mutex and the
                     util::mutex_lock family.
  raw-condvar     -- std::condition_variable (the std::mutex-only flavor) in
                     src/. annotated_mutex is not a std::mutex, so waits
                     must go through std::condition_variable_any +
                     util::cv_mutex_lock.
  counter-diff    -- differencing two reads of a live global counter
                     (hit_count() - ..., misses() - ...) in stat code. Live
                     counters move concurrently between the two reads;
                     snapshot once instead (the PR-6 telemetry registry
                     exists for exactly this).
  unchecked-size  -- `payload.size() - N` arithmetic in src/storage/ decode
                     paths. size() is unsigned; a short payload wraps to a
                     huge length instead of failing the bounds check. Compare
                     `size() < N` first, or restructure to addition.
  system-call     -- system( anywhere. The runner composes shell-visible
                     strings from user-controlled sweep specs; spawning a
                     shell on them is an injection waiting to happen.
  naked-new       -- `new X` outside a smart-pointer/container initializer.
                     Ownership must be visible in the type. The trace
                     recorder's chunk chain is the one audited exception
                     (suppressed inline).

A finding on a line carrying `// synts-lint: allow(<rule>)` is suppressed;
the suppression comment doubles as in-tree documentation of WHY the
exception is sound, so bare suppressions of never-firing rules are
harmless but reviewable.

Usage:
  scripts/lint_synts.py                 # lint the tree (src/ + tests/ + bench/ + tools/)
  scripts/lint_synts.py FILE...         # lint specific files
  scripts/lint_synts.py --self-test     # run the rules against scripts/lint_fixtures/

Exit status: 0 clean, 1 findings (or a fixture mismatch under --self-test).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SUPPRESS_RE = re.compile(r"//\s*synts-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Each rule: (name, compiled regex, message, path predicate).
# Predicates receive the path RELATIVE to the repo root, posix-style.


def _in_src(path: str) -> bool:
    return path.startswith("src/")


def _in_src_outside_thread_safety(path: str) -> bool:
    return path.startswith("src/") and path not in (
        "src/util/thread_safety.h",
        "src/util/lock_rank.h",
        "src/util/lock_rank.cpp",
    )


def _in_storage(path: str) -> bool:
    return path.startswith("src/storage/")


def _anywhere(_path: str) -> bool:
    return True


RULES = [
    (
        "raw-mutex",
        re.compile(
            r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
            r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
        ),
        "raw std:: locking primitive; use util::annotated_mutex + "
        "util::mutex_lock (src/util/thread_safety.h)",
        _in_src_outside_thread_safety,
    ),
    (
        "raw-condvar",
        # \b after "variable" keeps condition_variable_any legal.
        re.compile(r"\bstd::condition_variable\b(?!_any)"),
        "std::condition_variable only waits on std::mutex; use "
        "std::condition_variable_any + util::cv_mutex_lock",
        _in_src,
    ),
    (
        "counter-diff",
        re.compile(
            r"\b(hit_count|miss_count|hits|misses|launched|cancelled|"
            r"executed_count|steal_count|tick_count|drop_count)\(\)\s*-"
        ),
        "differencing live counter reads races concurrent movement; "
        "snapshot once via the obs registry instead",
        _in_src,
    ),
    (
        "unchecked-size",
        re.compile(r"\.size\(\)\s*-"),
        "unsigned size() subtraction wraps on short payloads; compare "
        "`size() < N` before subtracting",
        _in_storage,
    ),
    (
        "system-call",
        re.compile(r"\bsystem\s*\("),
        "shelling out from a tool that handles user-composed spec strings; "
        "spawn directly or restructure",
        _anywhere,
    ),
    (
        "naked-new",
        # `new X` whose result is not immediately owned: skip placement new,
        # unique_ptr/shared_ptr/make_* lines, and `operator new` mentions.
        re.compile(r"(?<![:_\w])new\s+[A-Za-z_][\w:]*\s*[({\[]"),
        "naked new; express ownership in the type (unique_ptr / container) "
        "or document + suppress the audited exception",
        _anywhere,
    ),
]

LINT_EXTENSIONS = {".h", ".hpp", ".cpp", ".cc"}
LINT_DIRS = ("src", "tests", "bench", "tools", "examples")


def default_targets() -> list[Path]:
    files: list[Path] = []
    for top in LINT_DIRS:
        root = REPO_ROOT / top
        if root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*")) if p.suffix in LINT_EXTENSIONS
            )
    return files


def suppressed_rules(line: str) -> set[str]:
    match = SUPPRESS_RE.search(line)
    if not match:
        return set()
    return {rule.strip() for rule in match.group(1).split(",")}


def owning_context(line: str, start: int) -> bool:
    """True when the `new` at `start` is directly owned by a smart pointer,
    a container emplace, or is placement new -- i.e. not naked."""
    prefix = line[:start]
    owner_re = re.compile(
        r"(unique_ptr|shared_ptr|make_unique|make_shared|reset\s*\(|"
        r"emplace\w*\s*\(|operator\s+new|placement|::new|\"|//)"
    )
    return bool(owner_re.search(prefix))


def lint_file(path: Path, rel: str) -> list[tuple[str, int, str, str]]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [("io-error", 0, str(err), rel)]
    findings = []
    in_block_comment = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        # Cheap block-comment tracking: rules document conventions, and the
        # conventions are frequently NAMED in prose comments.
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2 :]
            in_block_comment = False
        start = code.find("/*")
        if start >= 0 and code.find("*/", start) < 0:
            in_block_comment = True
            code = code[:start]
        # Strip line comments for matching, but keep the original line for
        # suppression lookup (the suppression LIVES in the comment).
        allowed = suppressed_rules(line)
        comment = code.find("//")
        if comment >= 0:
            code = code[:comment]
        for name, pattern, message, applies in RULES:
            if not applies(rel):
                continue
            if name in allowed:
                continue
            match = pattern.search(code)
            if not match:
                continue
            if name == "naked-new" and owning_context(code, match.start()):
                continue
            findings.append((name, lineno, message, rel))
    return findings


def run_lint(paths: list[Path]) -> int:
    total = 0
    for path in paths:
        try:
            rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            rel = path.as_posix()
        for name, lineno, message, shown in lint_file(path, rel):
            print(f"{shown}:{lineno}: [{name}] {message}")
            total += 1
    if total:
        print(f"lint_synts: {total} finding(s)", file=sys.stderr)
        return 1
    print("lint_synts: clean", file=sys.stderr)
    return 0


def run_self_test() -> int:
    """Each fixture declares its expected findings in `// expect:` headers;
    the clean fixture declares none and must produce none."""
    fixture_dir = REPO_ROOT / "scripts" / "lint_fixtures"
    fixtures = sorted(fixture_dir.glob("*.cpp"))
    if not fixtures:
        print(f"self-test: no fixtures in {fixture_dir}", file=sys.stderr)
        return 1
    failures = 0
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        expected = []
        for line in text.splitlines():
            match = re.match(r"//\s*expect:\s*([a-z-]+)\s+x(\d+)", line.strip())
            if match:
                expected.append((match.group(1), int(match.group(2))))
        # Fixtures emulate in-tree paths so the path predicates engage.
        pseudo_match = re.search(r"//\s*pseudo-path:\s*(\S+)", text)
        rel = pseudo_match.group(1) if pseudo_match else f"src/{fixture.name}"
        got = lint_file(fixture, rel)
        counts: dict[str, int] = {}
        for name, _lineno, _message, _rel in got:
            counts[name] = counts.get(name, 0) + 1
        want = {name: n for name, n in expected}
        if counts == want:
            print(f"self-test OK   {fixture.name}: {counts or 'clean'}")
        else:
            print(
                f"self-test FAIL {fixture.name}: expected {want or 'clean'}, "
                f"got {counts or 'clean'}"
            )
            failures += 1
    if failures:
        print(f"self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: {len(fixtures)} fixture(s) OK", file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="files to lint (default: the tree)")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check the rules against scripts/lint_fixtures/",
    )
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    targets = [Path(f) for f in args.files] if args.files else default_targets()
    return run_lint(targets)


if __name__ == "__main__":
    sys.exit(main())
