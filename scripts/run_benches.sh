#!/usr/bin/env bash
# Runs the runtime micro benches and dumps wall-clock timings to
# BENCH_runtime.json (schema: {"generated_unix": N, "hardware_threads": N,
# "benches": [{"name", "seconds", "exit_code"}...]}), then runs the
# characterization phase-timing bench, whose own JSON (per-pipeline-phase
# serial vs parallel timings plus the bit-identity verdict) is captured as
# BENCH_characterization.json, then the persistent-store bench
# (serialize/deserialize throughput plus cold vs warm vs resumed sweep
# timings and the zero-compute / bit-identity verdicts) as
# BENCH_storage.json.
#
# Usage: scripts/run_benches.sh [build-dir] (default: build)

set -u

build_dir="${1:-build}"
out="BENCH_runtime.json"

if [[ ! -d "${build_dir}" ]]; then
    echo "run_benches.sh: build dir '${build_dir}' not found (run cmake first)" >&2
    exit 1
fi

# The micro + runtime benches: small enough for CI, and together they cover
# the solver hot path, the estimator, the circuit simulator, and the new
# parallel sweep runtime.
benches=(
    bench_runtime_scaling
    bench_micro_solver
    bench_micro_estimator
    bench_micro_circuit
)

now_s() { date +%s.%N; }

json_rows=""
failures=0
for bench in "${benches[@]}"; do
    exe="${build_dir}/${bench}"
    if [[ ! -x "${exe}" ]]; then
        echo "skip ${bench}: not built" >&2
        continue
    fi
    echo "== ${bench}" >&2
    t0=$(now_s)
    "${exe}" > /dev/null 2>&1
    code=$?
    t1=$(now_s)
    seconds=$(awk -v a="${t0}" -v b="${t1}" 'BEGIN { printf "%.3f", b - a }')
    if [[ "${code}" -ne 0 ]]; then
        echo "FAIL ${bench}: exit ${code}" >&2
        failures=$((failures + 1))
    fi
    [[ -n "${json_rows}" ]] && json_rows+=","
    json_rows+=$'\n    '"{\"name\": \"${bench}\", \"seconds\": ${seconds}, \"exit_code\": ${code}}"
done

cat > "${out}" <<EOF
{
  "generated_unix": $(date +%s),
  "hardware_threads": $(nproc),
  "benches": [${json_rows}
  ]
}
EOF

echo "wrote ${out}" >&2
cat "${out}"

# -- characterization phase timings ------------------------------------------
# bench_characterization emits its own JSON (phase-by-phase serial vs
# parallel timings) on stdout and checks parallel/serial bit-identity
# itself, exiting non-zero on divergence.
char_bench="${build_dir}/bench_characterization"
char_out="BENCH_characterization.json"
if [[ -x "${char_bench}" ]]; then
    echo "== bench_characterization" >&2
    if ! "${char_bench}" > "${char_out}"; then
        echo "FAIL bench_characterization" >&2
        failures=$((failures + 1))
    fi
    echo "wrote ${char_out}" >&2
    cat "${char_out}"
else
    echo "skip bench_characterization: not built" >&2
fi

# -- persistent store: cold vs warm ------------------------------------------
# bench_storage emits its own JSON (codec throughput, cold/warm/resumed
# sweep timings) on stdout and verifies zero-compute warm runs plus cell
# bit-identity itself, exiting non-zero on violation.
storage_bench="${build_dir}/bench_storage"
storage_out="BENCH_storage.json"
if [[ -x "${storage_bench}" ]]; then
    echo "== bench_storage" >&2
    if ! "${storage_bench}" > "${storage_out}"; then
        echo "FAIL bench_storage" >&2
        failures=$((failures + 1))
    fi
    echo "wrote ${storage_out}" >&2
    cat "${storage_out}"
else
    echo "skip bench_storage: not built" >&2
fi

# A failing bench (e.g. bench_runtime_scaling's bit-identity check) must
# fail the CI step, not just be recorded in the artifact.
exit $((failures > 0 ? 1 : 0))
