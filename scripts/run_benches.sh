#!/usr/bin/env bash
# Runs the runtime micro benches and dumps wall-clock timings to
# BENCH_runtime.json (schema: {"generated_unix": N, "hardware_threads": N,
# "benches": [{"name", "seconds", "exit_code"}...]}), then runs the
# characterization phase-timing bench, whose own JSON (per-pipeline-phase
# serial vs parallel timings plus the bit-identity verdict) is captured as
# BENCH_characterization.json, then the persistent-store bench
# (serialize/deserialize throughput plus cold vs warm vs resumed sweep
# timings and the zero-compute / bit-identity verdicts) as
# BENCH_storage.json, then the telemetry overhead gate (disabled
# instrumentation must cost <= 2% over bare) as BENCH_obs.json, then the
# speculation gate (warm-ladder hit rate, cancel latency <= one chunk
# grain, sweep bit-identity) as BENCH_speculation.json, then the
# annotated-mutex overhead gate (release-build annotated lock <= 2% over
# bare std::mutex) as BENCH_locks.json. Finally
# every BENCH_*.json is stamped with a `meta` provenance block (UTC
# timestamp, host, hardware threads, git describe).
#
# Usage: scripts/run_benches.sh [build-dir] (default: build)

set -u

build_dir="${1:-build}"
out="BENCH_runtime.json"

# Recompute provenance at INVOCATION time and export it for every child:
# benches that stamp their own meta (via collect_sweep_json_meta) read
# SYNTS_GIT_DESCRIBE from the environment, and a stale exported value from
# an earlier shell once shipped BENCH_obs.json claiming a commit several
# PRs behind HEAD. Empty (not a git checkout) simply omits the field.
SYNTS_GIT_DESCRIBE="$(git describe --always --dirty 2> /dev/null || true)"
export SYNTS_GIT_DESCRIBE

if [[ ! -d "${build_dir}" ]]; then
    echo "run_benches.sh: build dir '${build_dir}' not found (run cmake first)" >&2
    exit 1
fi

# The micro + runtime benches: small enough for CI, and together they cover
# the solver hot path, the estimator, the circuit simulator, and the new
# parallel sweep runtime.
benches=(
    bench_runtime_scaling
    bench_micro_solver
    bench_micro_estimator
    bench_micro_circuit
)

now_s() { date +%s.%N; }

json_rows=""
failures=0
for bench in "${benches[@]}"; do
    exe="${build_dir}/${bench}"
    if [[ ! -x "${exe}" ]]; then
        echo "skip ${bench}: not built" >&2
        continue
    fi
    echo "== ${bench}" >&2
    t0=$(now_s)
    "${exe}" > /dev/null 2>&1
    code=$?
    t1=$(now_s)
    seconds=$(awk -v a="${t0}" -v b="${t1}" 'BEGIN { printf "%.3f", b - a }')
    if [[ "${code}" -ne 0 ]]; then
        echo "FAIL ${bench}: exit ${code}" >&2
        failures=$((failures + 1))
    fi
    [[ -n "${json_rows}" ]] && json_rows+=","
    json_rows+=$'\n    '"{\"name\": \"${bench}\", \"seconds\": ${seconds}, \"exit_code\": ${code}}"
done

cat > "${out}" <<EOF
{
  "generated_unix": $(date +%s),
  "hardware_threads": $(nproc),
  "benches": [${json_rows}
  ]
}
EOF

echo "wrote ${out}" >&2
cat "${out}"

# -- characterization phase timings ------------------------------------------
# bench_characterization emits its own JSON (phase-by-phase serial vs
# parallel timings) on stdout and checks parallel/serial bit-identity
# itself, exiting non-zero on divergence.
char_bench="${build_dir}/bench_characterization"
char_out="BENCH_characterization.json"
if [[ -x "${char_bench}" ]]; then
    echo "== bench_characterization" >&2
    if ! "${char_bench}" > "${char_out}"; then
        echo "FAIL bench_characterization" >&2
        failures=$((failures + 1))
    fi
    echo "wrote ${char_out}" >&2
    cat "${char_out}"
else
    echo "skip bench_characterization: not built" >&2
fi

# -- persistent store: cold vs warm ------------------------------------------
# bench_storage emits its own JSON (codec throughput, cold/warm/resumed
# sweep timings) on stdout and verifies zero-compute warm runs plus cell
# bit-identity itself, exiting non-zero on violation.
storage_bench="${build_dir}/bench_storage"
storage_out="BENCH_storage.json"
if [[ -x "${storage_bench}" ]]; then
    echo "== bench_storage" >&2
    if ! "${storage_bench}" > "${storage_out}"; then
        echo "FAIL bench_storage" >&2
        failures=$((failures + 1))
    fi
    echo "wrote ${storage_out}" >&2
    cat "${storage_out}"
else
    echo "skip bench_storage: not built" >&2
fi

# -- telemetry overhead gate -------------------------------------------------
# bench_obs emits its own JSON (bare vs instrumented-disabled vs
# instrumented-enabled ns/iter) on stdout and gates disabled-over-bare at
# <= 2%, exiting non-zero on a regression.
obs_bench="${build_dir}/bench_obs"
obs_out="BENCH_obs.json"
if [[ -x "${obs_bench}" ]]; then
    echo "== bench_obs" >&2
    if ! "${obs_bench}" > "${obs_out}"; then
        echo "FAIL bench_obs" >&2
        failures=$((failures + 1))
    fi
    echo "wrote ${obs_out}" >&2
    cat "${obs_out}"
else
    echo "skip bench_obs: not built" >&2
fi

# -- speculation quality + cancel-latency gate -------------------------------
# bench_speculation emits its own JSON (warm-ladder hit rate, wasted-work
# ratio, cancel-to-settle latency vs the chunk grain, sweep bit-identity
# verdict) on stdout and gates hits > 0, latency <= one chunk grain, and
# byte-identical sweep JSON itself, exiting non-zero on violation.
spec_bench="${build_dir}/bench_speculation"
spec_out="BENCH_speculation.json"
if [[ -x "${spec_bench}" ]]; then
    echo "== bench_speculation" >&2
    if ! "${spec_bench}" > "${spec_out}"; then
        echo "FAIL bench_speculation" >&2
        failures=$((failures + 1))
    fi
    echo "wrote ${spec_out}" >&2
    cat "${spec_out}"
else
    echo "skip bench_speculation: not built" >&2
fi

# -- annotated-mutex overhead gate -------------------------------------------
# bench_locks emits its own JSON (bare std::mutex vs util::annotated_mutex
# ns per lock/unlock + nested pair) on stdout and gates annotated-over-bare
# at <= 2% in release builds (where the lock-rank checks are compiled out
# and the wrapper must be free), exiting non-zero on a regression.
locks_bench="${build_dir}/bench_locks"
locks_out="BENCH_locks.json"
if [[ -x "${locks_bench}" ]]; then
    echo "== bench_locks" >&2
    if ! "${locks_bench}" > "${locks_out}"; then
        echo "FAIL bench_locks" >&2
        failures=$((failures + 1))
    fi
    echo "wrote ${locks_out}" >&2
    cat "${locks_out}"
else
    echo "skip bench_locks: not built" >&2
fi

# -- provenance stamping -----------------------------------------------------
# Every BENCH_*.json gets a `meta` block (schema_version, UTC timestamp,
# host, hardware threads, git describe) so archived artifacts are
# self-describing. Python is the only JSON rewriter the image guarantees;
# stamping is best-effort and never fails the run.
if command -v python3 > /dev/null 2>&1; then
    meta_generated="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    meta_host="$(hostname)"
    meta_threads="$(nproc)"
    meta_describe="${SYNTS_GIT_DESCRIBE}"
    for artifact in BENCH_*.json; do
        [[ -f "${artifact}" ]] || continue
        python3 - "${artifact}" "${meta_generated}" "${meta_host}" \
            "${meta_threads}" "${meta_describe}" <<'PYEOF' || \
            echo "warn: could not stamp ${artifact}" >&2
import json
import sys

path, generated, host, threads, describe = sys.argv[1:6]
with open(path) as f:
    doc = json.load(f)
meta = {
    "schema_version": 1,
    "generated_utc": generated,
    "hostname": host,
    "hardware_concurrency": int(threads),
}
if describe:
    meta["git_describe"] = describe
doc["meta"] = meta
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PYEOF
    done
    echo "stamped meta into BENCH_*.json" >&2
else
    echo "skip meta stamping: python3 not found" >&2
fi

# -- perf-regression ledger --------------------------------------------------
# One JSONL line per invocation, appended to BENCH_HISTORY.jsonl: the run's
# provenance plus every BENCH_*.json document inline. Append-only and
# one-line-per-run on purpose -- `jq`-able, diffable, and a later
# `bench_diff` can be pointed at any two extracted lines to compare
# arbitrary commits. Best-effort like the stamping: never fails the run.
if command -v python3 > /dev/null 2>&1; then
    python3 - "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "${SYNTS_GIT_DESCRIBE}" \
        "$(hostname)" BENCH_*.json <<'PYEOF' || \
        echo "warn: could not append BENCH_HISTORY.jsonl" >&2
import json
import sys

generated, describe, host = sys.argv[1:4]
entry = {"generated_utc": generated, "hostname": host, "artifacts": {}}
if describe:
    entry["git_describe"] = describe
for path in sys.argv[4:]:
    name = path.removeprefix("BENCH_").removesuffix(".json")
    with open(path) as f:
        entry["artifacts"][name] = json.load(f)
with open("BENCH_HISTORY.jsonl", "a") as f:
    f.write(json.dumps(entry, sort_keys=True) + "\n")
PYEOF
    echo "appended BENCH_HISTORY.jsonl" >&2
else
    echo "skip BENCH_HISTORY.jsonl: python3 not found" >&2
fi

# A failing bench (e.g. bench_runtime_scaling's bit-identity check) must
# fail the CI step, not just be recorded in the artifact.
exit $((failures > 0 ? 1 : 0))
