#!/usr/bin/env bash
# Contract tests for bench_diff, invoked from CTest as
#   test_bench_diff.sh <path-to-bench_diff>
#
# Pins the perf-regression ledger's comparator semantics: byte-identical
# documents always pass, a 20% slowdown under the 10% default tolerance
# fails with a REGRESSED line, direction inference (timings regress upward,
# throughput and `pass` regress downward), per-metric --tol overrides,
# missing-metric detection, zero-baseline exit codes, --ratios-only
# portability filtering, and loud exit-2 on unparseable input or misuse.
set -u

BENCH_DIFF=${1:?usage: test_bench_diff.sh <bench_diff>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
failures=0

check() {
    local name=$1 expected_rc=$2 actual_rc=$3
    if [ "$actual_rc" -ne "$expected_rc" ]; then
        echo "FAIL $name: expected exit $expected_rc, got $actual_rc" >&2
        failures=$((failures + 1))
        return 1
    fi
    echo "ok $name"
}

# A BENCH_obs-shaped baseline: timings, ratios, a verdict, and a meta
# block that must never be compared.
cat >"$WORK/baseline.json" <<'EOF'
{
  "bench": "obs_overhead",
  "bare_ns_per_iter": 50.0,
  "disabled_ns_per_iter": 50.5,
  "disabled_over_bare": 1.01,
  "cells_per_second": 2000.0,
  "sampler_ticks": 7,
  "pass": true,
  "benches": [
    {"name": "bench_micro_solver", "seconds": 0.5, "exit_code": 0},
    {"name": "bench_micro_circuit", "seconds": 1.0, "exit_code": 0}
  ],
  "generated_unix": 1754600000,
  "meta": {"schema_version": 1, "hostname": "baseline-host", "hardware_concurrency": 64}
}
EOF

# Identical documents: zero regressions, exit 0.
cp "$WORK/baseline.json" "$WORK/identical.json"
"$BENCH_DIFF" "$WORK/baseline.json" "$WORK/identical.json" >"$WORK/identical.out" 2>&1
check identical_passes 0 $?
grep -q ', 0 regressions' "$WORK/identical.out" || {
    echo "FAIL identical_passes: no zero-regression summary" >&2
    failures=$((failures + 1))
}

# Provenance is never compared: a different meta/hostname still passes.
sed 's/"baseline-host"/"other-host"/; s/1754600000/1754699999/' \
    "$WORK/baseline.json" >"$WORK/othermeta.json"
"$BENCH_DIFF" "$WORK/baseline.json" "$WORK/othermeta.json" >/dev/null 2>&1
check meta_is_ignored 0 $?

# A doctored 20% slowdown on a lower-better timing: REGRESSED, exit 1.
sed 's/"disabled_ns_per_iter": 50.5/"disabled_ns_per_iter": 60.6/' \
    "$WORK/baseline.json" >"$WORK/slower.json"
"$BENCH_DIFF" "$WORK/baseline.json" "$WORK/slower.json" >/dev/null 2>"$WORK/slower.err"
check doctored_slowdown_fails 1 $?
grep -q '^REGRESSED disabled_ns_per_iter' "$WORK/slower.err" || {
    echo "FAIL doctored_slowdown_fails: no REGRESSED line:" >&2
    cat "$WORK/slower.err" >&2
    failures=$((failures + 1))
}

# The same drift under a generous tolerance passes.
"$BENCH_DIFF" --tolerance=25 "$WORK/baseline.json" "$WORK/slower.json" >/dev/null 2>&1
check tolerance_flag_respected 0 $?

# Per-metric override: everything else stays at the default.
"$BENCH_DIFF" --tol=disabled_ns_per_iter=25 \
    "$WORK/baseline.json" "$WORK/slower.json" >/dev/null 2>&1
check per_metric_override 0 $?

# A 20% IMPROVEMENT on a timing passes: direction matters.
sed 's/"disabled_ns_per_iter": 50.5/"disabled_ns_per_iter": 40.4/' \
    "$WORK/baseline.json" >"$WORK/faster.json"
"$BENCH_DIFF" "$WORK/baseline.json" "$WORK/faster.json" >/dev/null 2>&1
check improvement_passes 0 $?

# Throughput is higher-better: a 20% DROP fails.
sed 's/"cells_per_second": 2000.0/"cells_per_second": 1600.0/' \
    "$WORK/baseline.json" >"$WORK/slower_tput.json"
"$BENCH_DIFF" "$WORK/baseline.json" "$WORK/slower_tput.json" >/dev/null 2>&1
check throughput_drop_fails 1 $?

# A verdict flip (pass: true -> false) is a regression at any tolerance.
sed 's/"pass": true/"pass": false/' "$WORK/baseline.json" >"$WORK/failing.json"
"$BENCH_DIFF" --tolerance=99 "$WORK/baseline.json" "$WORK/failing.json" >/dev/null 2>&1
check verdict_flip_fails 1 $?

# exit_code 0 -> 1: the zero-baseline additive rule (no ratio exists).
sed 's/"bench_micro_solver", "seconds": 0.5, "exit_code": 0/"bench_micro_solver", "seconds": 0.5, "exit_code": 1/' \
    "$WORK/baseline.json" >"$WORK/crashing.json"
"$BENCH_DIFF" "$WORK/baseline.json" "$WORK/crashing.json" >/dev/null 2>"$WORK/crashing.err"
check exit_code_regression_fails 1 $?
grep -q 'benches.bench_micro_solver.exit_code' "$WORK/crashing.err" || {
    echo "FAIL exit_code_regression: array element not keyed by name:" >&2
    cat "$WORK/crashing.err" >&2
    failures=$((failures + 1))
}

# A baseline metric missing from the current document is a failure --
# silent schema drift must not read as a fixed regression.
grep -v '"sampler_ticks"' "$WORK/baseline.json" |
    sed 's/"disabled_over_bare": 1.01,/"disabled_over_bare": 1.01,"padding": 1,/' \
        >"$WORK/missing.json"
"$BENCH_DIFF" "$WORK/baseline.json" "$WORK/missing.json" >/dev/null 2>"$WORK/missing.err"
check missing_metric_fails 1 $?
grep -q '^MISSING sampler_ticks' "$WORK/missing.err" || {
    echo "FAIL missing_metric_fails: no MISSING line:" >&2
    cat "$WORK/missing.err" >&2
    failures=$((failures + 1))
}

# --ratios-only: machine-specific timings are excluded, so the doctored
# ns/iter slowdown passes -- but a doctored RATIO still fails.
"$BENCH_DIFF" --ratios-only "$WORK/baseline.json" "$WORK/slower.json" >/dev/null 2>&1
check ratios_only_skips_timings 0 $?
sed 's/"disabled_over_bare": 1.01/"disabled_over_bare": 1.30/' \
    "$WORK/baseline.json" >"$WORK/ratio_regressed.json"
"$BENCH_DIFF" --ratios-only --tol=disabled_over_bare=2 \
    "$WORK/baseline.json" "$WORK/ratio_regressed.json" >/dev/null 2>&1
check ratios_only_compares_ratios 1 $?

# --list prints every compared path.
"$BENCH_DIFF" --list "$WORK/baseline.json" "$WORK/identical.json" >"$WORK/list.out" 2>&1
check list_mode 0 $?
grep -q '^ok benches.bench_micro_circuit.seconds' "$WORK/list.out" || {
    echo "FAIL list_mode: flattened path not listed:" >&2
    cat "$WORK/list.out" >&2
    failures=$((failures + 1))
}

# Unparseable JSON, wrong arity, and unknown flags: loud exit 2.
echo '{"truncated": ' >"$WORK/bad.json"
"$BENCH_DIFF" "$WORK/bad.json" "$WORK/baseline.json" >/dev/null 2>&1
check parse_error_exits_2 2 $?
"$BENCH_DIFF" "$WORK/baseline.json" >/dev/null 2>&1
check missing_operand_exits_2 2 $?
"$BENCH_DIFF" --frobnicate a b >/dev/null 2>&1
check unknown_flag_exits_2 2 $?
"$BENCH_DIFF" --tolerance=-5 a b >/dev/null 2>&1
check negative_tolerance_exits_2 2 $?

if [ "$failures" -ne 0 ]; then
    echo "$failures bench_diff contract failure(s)" >&2
    exit 1
fi
echo "all bench_diff contract tests passed"
