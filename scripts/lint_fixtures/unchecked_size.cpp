// Fixture: unsigned size() subtraction in a storage decode path is
// flagged; the restructured comparison is not.
// pseudo-path: src/storage/fixture.cpp
// expect: unchecked-size x1

#include <cstddef>
#include <vector>

std::size_t flagged(const std::vector<unsigned char>& payload)
{
    return payload.size() - 8;
}

bool fine(const std::vector<unsigned char>& payload, std::size_t need)
{
    return payload.size() < need;
}
