// Fixture: differencing two reads of a live counter accessor is flagged;
// subtracting a plain local is not.
// pseudo-path: src/runtime/fixture.cpp
// expect: counter-diff x1

struct cache_like {
    unsigned long hit_count() const { return 0; }
};

unsigned long stat_delta(const cache_like& c, unsigned long before)
{
    return c.hit_count() - before;
}

unsigned long fine(unsigned long after, unsigned long before)
{
    return after - before;
}
