// Fixture: a naked owning `new` is flagged; smart-pointer initializers,
// reset(), and a documented suppression are not.
// pseudo-path: src/obs/fixture.cpp
// expect: naked-new x1

#include <memory>

struct chunk {
    int payload[16] = {};
};

chunk* flagged()
{
    return new chunk();
}

std::unique_ptr<chunk> fine_owned()
{
    return std::unique_ptr<chunk>(new chunk());
}

void fine_reset(std::unique_ptr<chunk>& slot)
{
    slot.reset(new chunk());
}

chunk* fine_audited()
{
    // Ownership transfers to a lock-free chain in the real code.
    return new chunk(); // synts-lint: allow(naked-new)
}
