// Fixture: idiomatic SynTS code -- annotated locking, snapshot-based
// stats, checked decode arithmetic -- produces zero findings. Rule names
// in comments (raw-mutex, counter-diff, system-call) must not fire either.
// pseudo-path: src/runtime/fixture.cpp
// (no expected findings)

#include <cstddef>
#include <memory>
#include <vector>

struct annotated_mutex_like {
    void lock() {}
    void unlock() {}
};

struct guard {
    explicit guard(annotated_mutex_like& m) : m_(m) { m_.lock(); }
    ~guard() { m_.unlock(); }
    annotated_mutex_like& m_;
};

struct snapshot {
    unsigned long hits = 0;
};

unsigned long fine_stats(const snapshot& before, const snapshot& after)
{
    return after.hits - before.hits;
}

bool fine_decode(const std::vector<unsigned char>& payload, std::size_t need)
{
    if (payload.size() < need) {
        return false;
    }
    return true;
}

std::unique_ptr<int> fine_alloc()
{
    return std::make_unique<int>(7);
}
