// Fixture: raw std:: locking primitives in src/ must be flagged, and an
// inline suppression must silence exactly its own line.
// pseudo-path: src/runtime/fixture.cpp
// expect: raw-mutex x3

#include <mutex>

struct flagged {
    std::mutex m;
    void touch()
    {
        const std::lock_guard lock(m);
        std::unique_lock other(m, std::defer_lock);
    }
};

struct audited {
    std::mutex m; // synts-lint: allow(raw-mutex) -- fixture: suppression works
};
