// Fixture: the std::mutex-only condition_variable is flagged; the _any
// flavor (which waits on annotated mutexes) is not.
// pseudo-path: src/obs/fixture.cpp
// expect: raw-condvar x1

#include <condition_variable>

struct flagged {
    std::condition_variable cv;
};

struct fine {
    std::condition_variable_any cv;
};
