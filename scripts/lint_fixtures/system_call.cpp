// Fixture: shelling out is flagged wherever it appears; a method merely
// NAMED system_x is not.
// pseudo-path: tools/fixture.cpp
// expect: system-call x1

#include <cstdlib>

int flagged(const char* command)
{
    return std::system(command);
}

struct model {
    int system_order() const { return 2; }
};

int fine(const model& m)
{
    return m.system_order();
}
