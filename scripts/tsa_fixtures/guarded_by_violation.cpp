// NEGATIVE fixture for the Clang thread-safety CI job. This file reads and
// writes a SYNTS_GUARDED_BY member without holding its mutex; compiling it
// with `clang++ -Wthread-safety -Werror=thread-safety` MUST FAIL. The CI
// step inverts the exit code, so the analysis silently going dark (a macro
// edit that no-ops the attributes, a flag typo in the job) breaks the
// build instead of shipping unanalyzed annotations.
//
// Not part of any CMake target: only the wthread-safety CI job compiles it.

#include "util/thread_safety.h"

#include <cstdint>

namespace {

class racy_counter {
public:
    void bump()
    {
        ++value_; // BAD: mutates value_ without mutex_ -- TSA must reject
    }

    [[nodiscard]] std::uint64_t read() const
    {
        return value_; // BAD: reads value_ without mutex_ -- TSA must reject
    }

private:
    mutable synts::util::annotated_mutex mutex_{
        synts::util::lock_rank::metrics_registry, "fixture.racy_counter"};
    std::uint64_t value_ SYNTS_GUARDED_BY(mutex_) = 0;
};

} // namespace

int main()
{
    racy_counter counter;
    counter.bump();
    return static_cast<int>(counter.read());
}
