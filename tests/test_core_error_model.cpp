// Tests for core/error_model.

#include <gtest/gtest.h>

#include "core/error_model.h"
#include "util/rng.h"

namespace {

using namespace synts::core;
using synts::util::histogram;

empirical_error_model make_two_corner_model()
{
    // Corner 0: delays uniform in [0, 100); corner 1 scaled by 1.5.
    histogram h0(0.0, 105.0, 128);
    histogram h1(0.0, 160.0, 128);
    synts::util::xoshiro256 rng(3);
    for (int i = 0; i < 50000; ++i) {
        const double d = rng.uniform(0.0, 100.0);
        h0.add(d);
        h1.add(d * 1.5);
    }
    return empirical_error_model({h0, h1}, {100.0, 150.0}, 0.5);
}

TEST(empirical_model, rejects_inconsistent_construction)
{
    histogram h(0.0, 1.0, 4);
    EXPECT_THROW(empirical_error_model({h}, {1.0, 2.0}, 0.5), std::invalid_argument);
    EXPECT_THROW(empirical_error_model({h}, {1.0}, 1.5), std::invalid_argument);
    EXPECT_THROW(empirical_error_model({}, {}, 0.5), std::invalid_argument);
}

TEST(empirical_model, error_zero_at_r_one)
{
    const auto model = make_two_corner_model();
    EXPECT_NEAR(model.error_probability(0, 1.0), 0.0, 1e-3);
    EXPECT_NEAR(model.error_probability(1, 1.0), 0.0, 1e-3);
}

TEST(empirical_model, uniform_delays_give_linear_exceedance)
{
    const auto model = make_two_corner_model();
    // P(delay > 0.6 * 100) = 0.4 per vector, x drive fraction 0.5 = 0.2.
    EXPECT_NEAR(model.error_probability(0, 0.6), 0.2, 0.01);
    EXPECT_NEAR(model.vector_error_probability(0, 0.6), 0.4, 0.01);
}

TEST(empirical_model, voltage_corners_consistent_under_uniform_scaling)
{
    const auto model = make_two_corner_model();
    // Both corners were built from the same normalized distribution, so
    // err(j, r) should agree across corners for equal r.
    for (const double r : {0.5, 0.7, 0.9}) {
        EXPECT_NEAR(model.error_probability(0, r), model.error_probability(1, r), 0.01);
    }
}

TEST(empirical_model, monotone_non_increasing_in_r)
{
    const auto model = make_two_corner_model();
    for (std::size_t j = 0; j < model.corner_count(); ++j) {
        double previous = 1.0;
        for (double r = 0.3; r <= 1.05; r += 0.05) {
            const double e = model.error_probability(j, r);
            ASSERT_LE(e, previous + 1e-12);
            previous = e;
        }
    }
}

TEST(empirical_model, out_of_range_voltage_throws)
{
    const auto model = make_two_corner_model();
    EXPECT_THROW((void)model.error_probability(5, 0.9), std::out_of_range);
}

TEST(synthetic_curve, zero_above_onset)
{
    const synthetic_error_curve curve(0.9, 0.6, 0.1, 2.0);
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 0.95), 0.0);
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 0.9), 0.0);
    EXPECT_GT(curve.error_probability(0, 0.89), 0.0);
}

TEST(synthetic_curve, hits_scale_at_floor)
{
    const synthetic_error_curve curve(0.9, 0.6, 0.1, 2.0);
    EXPECT_NEAR(curve.error_probability(0, 0.6), 0.1, 1e-12);
}

TEST(synthetic_curve, capped)
{
    const synthetic_error_curve curve(0.9, 0.6, 10.0, 1.0, 0.5);
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 0.0), 0.5);
}

TEST(synthetic_curve, monotone_non_increasing)
{
    const synthetic_error_curve curve(0.92, 0.64, 0.08, 1.7);
    double previous = 1.0;
    for (double r = 0.4; r <= 1.0; r += 0.01) {
        const double e = curve.error_probability(0, r);
        ASSERT_LE(e, previous + 1e-12);
        previous = e;
    }
}

TEST(synthetic_curve, rejects_bad_parameters)
{
    EXPECT_THROW(synthetic_error_curve(0.6, 0.9, 0.1, 2.0), std::invalid_argument);
    EXPECT_THROW(synthetic_error_curve(0.9, 0.6, -0.1, 2.0), std::invalid_argument);
    EXPECT_THROW(synthetic_error_curve(0.9, 0.6, 0.1, 0.0), std::invalid_argument);
}

} // namespace
