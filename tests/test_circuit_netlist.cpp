// Tests for circuit/netlist: construction rules and bookkeeping.

#include <gtest/gtest.h>

#include "circuit/netlist.h"

namespace {

using namespace synts::circuit;

TEST(netlist, inputs_get_sequential_net_ids)
{
    netlist nl("t");
    EXPECT_EQ(nl.add_input("a"), 0u);
    EXPECT_EQ(nl.add_input("b"), 1u);
    EXPECT_EQ(nl.input_count(), 2u);
    EXPECT_EQ(nl.net_count(), 2u);
    EXPECT_EQ(nl.input_name(0), "a");
}

TEST(netlist, add_input_bus_names)
{
    netlist nl("t");
    const auto bus = nl.add_input_bus("data", 3);
    EXPECT_EQ(bus.size(), 3u);
    EXPECT_EQ(nl.input_name(1), "data[1]");
}

TEST(netlist, gate_output_follows_inputs)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id y = nl.add_gate2(cell_kind::and2, a, b);
    EXPECT_EQ(y, 2u);
    EXPECT_EQ(nl.gate_count(), 1u);
    EXPECT_EQ(nl.net_count(), 3u);
    EXPECT_EQ(nl.driver_of(y), 0u);
    EXPECT_EQ(nl.driver_of(a), nl.gate_count()); // sentinel for inputs
}

TEST(netlist, rejects_arity_mismatch)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const std::array<net_id, 1> one{a};
    EXPECT_THROW((void)nl.add_gate(cell_kind::and2, one), std::invalid_argument);
}

TEST(netlist, rejects_unknown_input_net)
{
    netlist nl("t");
    (void)nl.add_input("a");
    EXPECT_THROW((void)nl.add_gate2(cell_kind::and2, 0, 99), std::invalid_argument);
}

TEST(netlist, rejects_dff_in_combinational_netlist)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    EXPECT_THROW((void)nl.add_gate1(cell_kind::dff, a), std::invalid_argument);
}

TEST(netlist, rejects_inputs_after_gates)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    (void)nl.add_gate1(cell_kind::inv, a);
    EXPECT_THROW((void)nl.add_input("late"), std::logic_error);
}

TEST(netlist, fanout_counts_pins_and_outputs)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const net_id x = nl.add_gate1(cell_kind::inv, a);
    const net_id y = nl.add_gate2(cell_kind::and2, a, x);
    nl.mark_output("y", y);
    const auto fanout = nl.fanout_counts();
    EXPECT_EQ(fanout[a], 2u); // inv pin + and pin
    EXPECT_EQ(fanout[x], 1u); // and pin
    EXPECT_EQ(fanout[y], 1u); // primary output
}

TEST(netlist, mark_output_bus_names_and_nets)
{
    netlist nl("t");
    const auto bus = nl.add_input_bus("in", 2);
    nl.mark_output_bus("out", bus);
    EXPECT_EQ(nl.output_count(), 2u);
    EXPECT_EQ(nl.output_name(1), "out[1]");
    EXPECT_EQ(nl.output_net(0), bus[0]);
}

TEST(netlist, mark_output_rejects_bad_net)
{
    netlist nl("t");
    EXPECT_THROW(nl.mark_output("y", 5), std::invalid_argument);
}

TEST(netlist, area_and_leakage_roll_up)
{
    const cell_library lib = cell_library::standard_22nm();
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    (void)nl.add_gate2(cell_kind::and2, a, b);
    (void)nl.add_gate2(cell_kind::xor2, a, b);
    const double expected_area = lib.params(cell_kind::and2).area_um2 +
                                 lib.params(cell_kind::xor2).area_um2;
    EXPECT_DOUBLE_EQ(nl.total_area_um2(lib), expected_area);
    EXPECT_GT(nl.total_leakage_nw(lib), 0.0);
}

TEST(netlist, kind_histogram_counts_instances)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    (void)nl.add_gate1(cell_kind::inv, a);
    (void)nl.add_gate1(cell_kind::inv, a);
    (void)nl.add_gate1(cell_kind::buf, a);
    const auto hist = nl.kind_histogram();
    EXPECT_EQ(hist[static_cast<std::size_t>(cell_kind::inv)], 2u);
    EXPECT_EQ(hist[static_cast<std::size_t>(cell_kind::buf)], 1u);
}

TEST(netlist, validate_passes_on_well_formed)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const net_id x = nl.add_gate1(cell_kind::inv, a);
    nl.mark_output("x", x);
    EXPECT_NO_THROW(nl.validate());
}

} // namespace
