// Tests for multi-process sweep sharding: the deterministic pair-granular
// partition, shard runs checkpointing under GLOBAL cell indices through one
// shared store, merge assembling a result byte-identical to the unsharded
// run (JSON and task seeds included), and the rejection matrix -- foreign
// layouts/manifests, overlapping partitions, incomplete shard sets. Uses
// deliberately tiny registered workloads so N-shard sweeps stay fast.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "runtime/experiment_cache.h"
#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "runtime/thread_pool.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"
#include "util/hashing.h"
#include "workload/registry.h"
#include "workload/scenarios.h"

namespace {

using namespace synts;
namespace fs = std::filesystem;

/// Self-cleaning unique directory under the system temp dir.
struct temp_dir {
    fs::path path;

    temp_dir()
    {
        static std::atomic<std::uint64_t> counter{0};
        path = fs::temp_directory_path() /
               ("synts_shard_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }
    ~temp_dir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/// Registers (once) and returns a tiny workload in the global registry --
/// 1 interval x 500 instructions, ~100x cheaper than a built-in profile --
/// so multi-shard sweeps run in milliseconds. Distinct `salt`s are
/// distinct workloads (distinct identity AND distinct operand streams).
workload::workload_key tiny_workload(const std::string& name, std::uint64_t salt)
{
    workload::workload_registry& global = workload::workload_registry::global();
    if (global.contains(name)) {
        return global.key(name);
    }
    util::digest_builder h;
    h.text("tiny_shard_test_workload");
    h.text(name);
    h.u64(salt);
    const workload::workload_key key{name, h.digest()};
    global.add(key, [salt](std::size_t thread_count) {
        workload::benchmark_profile profile =
            workload::make_lock_ladder_profile(workload::lock_ladder_params{},
                                               thread_count);
        profile.stream_salt = salt;
        profile.interval_count = 1;
        profile.instructions_per_interval = 500;
        return profile;
    });
    return key;
}

/// A 3-pair spec over tiny workloads (cross product 3 benchmarks x 1
/// stage), two policies -- 6 cells.
runtime::sweep_spec tiny_spec()
{
    runtime::sweep_spec spec;
    spec.benchmarks = {tiny_workload("shard_tiny_a", 11),
                       tiny_workload("shard_tiny_b", 22),
                       tiny_workload("shard_tiny_c", 33)};
    spec.stages = {circuit::pipe_stage::simple_alu};
    spec.policies = {core::policy_kind::nominal, core::policy_kind::per_core_ts};
    return spec;
}

std::string sweep_json(const runtime::sweep_result& result)
{
    std::ostringstream out;
    runtime::write_sweep_json(result, out);
    return out.str();
}

// -- the partition -----------------------------------------------------------

TEST(runtime_shard, partition_is_complete_disjoint_and_validated)
{
    const runtime::sweep_spec spec = tiny_spec();
    ASSERT_EQ(spec.expanded_pairs().size(), 3u);

    for (const std::size_t count : {1u, 2u, 3u, 5u}) {
        std::vector<int> owners(spec.expanded_pairs().size(), 0);
        for (std::size_t i = 0; i < count; ++i) {
            const runtime::sweep_shard shard = spec.shard(i, count);
            EXPECT_EQ(shard.index, i);
            EXPECT_EQ(shard.count, count);
            for (std::size_t p = 0; p < owners.size(); ++p) {
                if (shard.owns_pair(p)) {
                    ++owners[p];
                }
            }
        }
        // Every pair owned exactly once over the whole shard set.
        for (const int owner_count : owners) {
            EXPECT_EQ(owner_count, 1);
        }
    }

    EXPECT_THROW((void)spec.shard(0, 0), std::invalid_argument);
    EXPECT_THROW((void)spec.shard(2, 2), std::invalid_argument);
    EXPECT_THROW((void)spec.shard(7, 3), std::invalid_argument);
}

TEST(runtime_shard, shard_run_requires_a_store)
{
    runtime::thread_pool pool(2);
    runtime::experiment_cache cache;
    const runtime::sweep_scheduler scheduler(pool, cache);
    runtime::sweep_options options;
    options.shard = tiny_spec().shard(0, 2);
    EXPECT_THROW((void)scheduler.run(tiny_spec(), options), std::invalid_argument);
}

// -- shard + merge determinism ----------------------------------------------

TEST(runtime_shard, n_shard_runs_merge_byte_identical_to_unsharded)
{
    const runtime::sweep_spec spec = tiny_spec();

    // The reference: one unsharded run, no store involved at all.
    runtime::thread_pool pool(2);
    runtime::experiment_cache reference_cache;
    const runtime::sweep_result reference =
        runtime::sweep_scheduler(pool, reference_cache).run(spec);
    const std::string reference_json = sweep_json(reference);

    for (const std::size_t shard_count : {1u, 2u, 3u}) {
        temp_dir dir;
        storage::artifact_store store(dir.path);

        // One fresh cache per shard run: each emulates its own process.
        for (std::size_t i = 0; i < shard_count; ++i) {
            runtime::experiment_cache cache;
            const runtime::sweep_result slice =
                runtime::sweep_scheduler(pool, cache)
                    .run(spec, {&store, false, spec.shard(i, shard_count)});
            // The slice echoes a spec reduced to its owned pairs -- but
            // reports the FULL sweep's digest (the checkpoint keying
            // identity its JSON emits), not the reduced echo's.
            EXPECT_EQ(slice.spec.expanded_pairs().size() * spec.policies.size(),
                      slice.cells.size());
            EXPECT_EQ(slice.spec_digest, spec.digest());
            EXPECT_TRUE(slice.checkpointing);
        }

        const runtime::sweep_result merged = runtime::merge_sweep_shards(spec, store);
        ASSERT_EQ(merged.cells.size(), reference.cells.size()) << shard_count;
        for (std::size_t c = 0; c < merged.cells.size(); ++c) {
            // Byte equality of the canonical encodings IS bit equality of
            // every field, task_seed included.
            EXPECT_EQ(storage::encode(merged.cells[c]),
                      storage::encode(reference.cells[c]))
                << "shard_count " << shard_count << " cell " << c;
        }
        EXPECT_EQ(sweep_json(merged), reference_json) << shard_count;
        EXPECT_EQ(merged.cells_loaded, merged.cells.size());
        EXPECT_EQ(merged.cells_missed(), 0u);
    }
}

TEST(runtime_shard, shard_cells_reuse_unsharded_checkpoint_keys)
{
    // A shard run and an unsharded checkpointing run of the same spec must
    // produce the same (spec digest, index) keys -- resume interoperates.
    const runtime::sweep_spec spec = tiny_spec();
    const std::uint64_t digest = spec.digest();
    temp_dir dir;
    storage::artifact_store store(dir.path);
    runtime::thread_pool pool(2);

    runtime::experiment_cache cache;
    (void)runtime::sweep_scheduler(pool, cache).run(spec,
                                                    {&store, false, spec.shard(1, 3)});
    // Shard 1 of 3 owns exactly pair 1 -> global cells 2 and 3.
    const std::size_t policies = spec.policies.size();
    for (std::size_t p = 0; p < spec.expanded_pairs().size(); ++p) {
        for (std::size_t q = 0; q < policies; ++q) {
            const bool expected = p % 3 == 1;
            EXPECT_EQ(store.contains(storage::cell_bucket,
                                     runtime::sweep_cell_digest(
                                         digest, p * policies + q)),
                      expected)
                << "pair " << p << " policy " << q;
        }
    }
}

// -- rejection matrix --------------------------------------------------------

TEST(runtime_shard, overlapping_partitions_of_one_spec_are_refused)
{
    const runtime::sweep_spec spec = tiny_spec();
    temp_dir dir;
    storage::artifact_store store(dir.path);
    runtime::thread_pool pool(2);

    runtime::experiment_cache cache;
    (void)runtime::sweep_scheduler(pool, cache).run(spec,
                                                    {&store, false, spec.shard(0, 2)});
    // A 3-way partition of the same spec in the same store would overlap
    // the recorded 2-way one.
    runtime::experiment_cache other_cache;
    EXPECT_THROW((void)runtime::sweep_scheduler(pool, other_cache)
                     .run(spec, {&store, false, spec.shard(0, 3)}),
                 runtime::shard_error);
    // The recorded layout (same count) is fine, including re-runs.
    EXPECT_NO_THROW((void)runtime::sweep_scheduler(pool, other_cache)
                        .run(spec, {&store, false, spec.shard(0, 2)}));
}

TEST(runtime_shard, merge_requires_layout_and_every_shard_manifest)
{
    const runtime::sweep_spec spec = tiny_spec();
    temp_dir dir;
    storage::artifact_store store(dir.path);

    // Nothing recorded at all.
    EXPECT_THROW((void)runtime::merge_sweep_shards(spec, store), runtime::shard_error);

    // Only shard 0 of 2 has run: layout exists, shard 1's manifest is
    // missing.
    runtime::thread_pool pool(2);
    runtime::experiment_cache cache;
    (void)runtime::sweep_scheduler(pool, cache).run(spec,
                                                    {&store, false, spec.shard(0, 2)});
    EXPECT_THROW((void)runtime::merge_sweep_shards(spec, store), runtime::shard_error);

    // After shard 1 completes, the merge goes through.
    runtime::experiment_cache other_cache;
    (void)runtime::sweep_scheduler(pool, other_cache)
        .run(spec, {&store, false, spec.shard(1, 2)});
    EXPECT_NO_THROW((void)runtime::merge_sweep_shards(spec, store));
}

TEST(runtime_shard, merge_rejects_foreign_and_malformed_manifests)
{
    const runtime::sweep_spec spec = tiny_spec();
    const std::uint64_t digest = spec.digest();
    temp_dir dir;
    storage::artifact_store store(dir.path);

    // A layout frame stamped for a DIFFERENT spec planted at this spec's
    // layout key: decodable, wrong identity.
    const runtime::shard_manifest foreign{digest ^ 0xDEADBEEF, 1, 1,
                                          spec.task_count()};
    ASSERT_TRUE(store.store(storage::manifest_bucket,
                            runtime::shard_layout_digest(digest),
                            storage::encode(foreign)));
    EXPECT_THROW((void)runtime::merge_sweep_shards(spec, store), runtime::shard_error);

    // A layout whose cell count disagrees with the spec's expansion.
    const runtime::shard_manifest wrong_shape{digest, 1, 1, spec.task_count() + 7};
    ASSERT_TRUE(store.store(storage::manifest_bucket,
                            runtime::shard_layout_digest(digest),
                            storage::encode(wrong_shape)));
    EXPECT_THROW((void)runtime::merge_sweep_shards(spec, store), runtime::shard_error);

    // A correct layout but a foreign manifest at shard 0's key.
    const runtime::shard_manifest layout{digest, 2, 2, spec.task_count()};
    ASSERT_TRUE(store.store(storage::manifest_bucket,
                            runtime::shard_layout_digest(digest),
                            storage::encode(layout)));
    const runtime::shard_manifest foreign_shard{digest ^ 1, 2, 0, 4};
    ASSERT_TRUE(store.store(storage::manifest_bucket,
                            runtime::shard_manifest_digest(digest, 2, 0),
                            storage::encode(foreign_shard)));
    EXPECT_THROW((void)runtime::merge_sweep_shards(spec, store), runtime::shard_error);
}

// -- stats attribution under concurrency -------------------------------------

TEST(runtime_shard, concurrent_sweeps_on_one_cache_attribute_their_own_traffic)
{
    // Two different single-pair sweeps share ONE experiment cache and run
    // concurrently. Before per-sweep sinks, each sweep's stats were
    // computed by differencing the cache's GLOBAL counters around its run
    // window -- so each sweep also swallowed the other's traffic. With
    // attribution threaded through the lookups, each must see exactly its
    // own: 1 program miss, 1 stage miss, 1 compute, 0 hits.
    const workload::workload_key key_a = tiny_workload("shard_stats_a", 77);
    const workload::workload_key key_b = tiny_workload("shard_stats_b", 88);

    runtime::experiment_cache cache; // shared by both sweeps
    runtime::thread_pool pool_a(2);
    runtime::thread_pool pool_b(2);
    const runtime::sweep_scheduler scheduler_a(pool_a, cache);
    const runtime::sweep_scheduler scheduler_b(pool_b, cache);

    runtime::sweep_spec spec_a;
    spec_a.benchmarks = {key_a};
    spec_a.stages = {circuit::pipe_stage::simple_alu};
    spec_a.policies = {core::policy_kind::nominal};
    runtime::sweep_spec spec_b = spec_a;
    spec_b.benchmarks = {key_b};

    runtime::sweep_result result_a;
    runtime::sweep_result result_b;
    std::thread other([&] { result_b = scheduler_b.run(spec_b); });
    result_a = scheduler_a.run(spec_a);
    other.join();

    for (const runtime::sweep_result* result : {&result_a, &result_b}) {
        EXPECT_EQ(result->program_cache_misses, 1u);
        EXPECT_EQ(result->program_cache_hits, 0u);
        EXPECT_EQ(result->program_computes, 1u);
        EXPECT_EQ(result->cache_misses, 1u);
        EXPECT_EQ(result->cache_hits, 0u);
        EXPECT_EQ(result->disk_hits, 0u);
        EXPECT_EQ(result->disk_misses, 0u);
    }
    // The globals still see the union.
    EXPECT_EQ(cache.program_miss_count(), 2u);
    EXPECT_EQ(cache.program_compute_count(), 2u);
    EXPECT_EQ(cache.miss_count(), 2u);

    // A re-run of sweep A against the warm cache reports pure hits -- and
    // zero computes, where the old differencing could even wrap negative
    // when another thread's traffic landed in the window.
    const runtime::sweep_result warm = scheduler_a.run(spec_a);
    EXPECT_EQ(warm.cache_hits, 1u);
    EXPECT_EQ(warm.cache_misses, 0u);
    EXPECT_EQ(warm.program_cache_misses, 0u);
    EXPECT_EQ(warm.program_computes, 0u);
}

// -- cells_missed underflow guard --------------------------------------------

TEST(runtime_shard, cells_missed_never_underflows)
{
    runtime::sweep_result result;
    result.checkpointing = true;
    result.cells.resize(2);
    result.cells_loaded = 5; // merge/layout mismatch can report more loaded
    EXPECT_EQ(result.cells_missed(), 0u);

    result.cells_loaded = 1;
    EXPECT_EQ(result.cells_missed(), 1u);

    result.checkpointing = false;
    EXPECT_EQ(result.cells_missed(), 0u);
}

} // namespace
