// Tests for the staged characterization pipeline: program_characterizer
// artifacts, the artifact-consuming characterizer overload, and the
// bit-identity of every parallel phase (trace generation, architectural
// profiling, per-(thread, interval) timing simulation) against the serial
// path. The identity checks are exact -- EXPECT_EQ on doubles/floats -- by
// design: the parallel fan-out must not change a single bit.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/characterization.h"
#include "core/experiment.h"
#include "core/program_artifacts.h"
#include "runtime/thread_pool.h"
#include "workload/splash2.h"

namespace {

using namespace synts;

constexpr auto kBenchmark = workload::benchmark_id::radix;
constexpr auto kStage = circuit::pipe_stage::simple_alu;
constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kThreads = 4;

void expect_same_trace(const arch::program_trace& a, const arch::program_trace& b)
{
    ASSERT_EQ(a.thread_count(), b.thread_count());
    for (std::size_t t = 0; t < a.thread_count(); ++t) {
        EXPECT_EQ(a.threads[t].barrier_points, b.threads[t].barrier_points);
        ASSERT_EQ(a.threads[t].ops.size(), b.threads[t].ops.size());
        for (std::size_t n = 0; n < a.threads[t].ops.size(); ++n) {
            const arch::micro_op& x = a.threads[t].ops[n];
            const arch::micro_op& y = b.threads[t].ops[n];
            ASSERT_EQ(x.cls, y.cls);
            ASSERT_EQ(x.encoding, y.encoding);
            ASSERT_EQ(x.operand_a, y.operand_a);
            ASSERT_EQ(x.operand_b, y.operand_b);
            ASSERT_EQ(x.address, y.address);
            ASSERT_EQ(x.branch_taken, y.branch_taken);
        }
    }
}

void expect_same_characterization(const core::stage_characterization& a,
                                  const core::stage_characterization& b)
{
    EXPECT_EQ(a.stage, b.stage);
    EXPECT_EQ(a.tnom_ps, b.tnom_ps);
    EXPECT_EQ(a.corner_vdd, b.corner_vdd);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        ASSERT_EQ(a.threads[t].size(), b.threads[t].size());
        for (std::size_t k = 0; k < a.threads[t].size(); ++k) {
            const core::interval_characterization& x = a.threads[t][k];
            const core::interval_characterization& y = b.threads[t][k];
            EXPECT_EQ(x.instruction_count, y.instruction_count);
            EXPECT_EQ(x.vector_count, y.vector_count);
            EXPECT_EQ(x.sampling_delays_ps, y.sampling_delays_ps);
            EXPECT_EQ(x.sampling_instr_index, y.sampling_instr_index);
            ASSERT_EQ(x.delay_histograms.size(), y.delay_histograms.size());
            for (std::size_t c = 0; c < x.delay_histograms.size(); ++c) {
                ASSERT_EQ(x.delay_histograms[c].bin_count(),
                          y.delay_histograms[c].bin_count());
                EXPECT_EQ(x.delay_histograms[c].total(), y.delay_histograms[c].total());
                for (std::size_t i = 0; i < x.delay_histograms[c].bin_count(); ++i) {
                    ASSERT_EQ(x.delay_histograms[c].count_at(i),
                              y.delay_histograms[c].count_at(i));
                }
            }
        }
    }
}

TEST(characterization_pipeline, program_characterizer_produces_valid_artifacts)
{
    const core::program_characterizer characterizer;
    const core::program_artifacts artifacts =
        characterizer.characterize(kBenchmark, kThreads, kSeed);
    EXPECT_NO_THROW(artifacts.validate());
    EXPECT_EQ(artifacts.workload, workload::workload_key(kBenchmark));
    EXPECT_EQ(artifacts.thread_count, kThreads);
    EXPECT_EQ(artifacts.seed, kSeed);
    EXPECT_EQ(artifacts.workload_digest, core::workload_digest(kThreads, kSeed, {}));
    EXPECT_EQ(artifacts.trace.thread_count(), kThreads);
    EXPECT_GT(artifacts.interval_count(), 0u);
    ASSERT_EQ(artifacts.arch_profiles.size(), kThreads);
    for (const arch::thread_profile& profile : artifacts.arch_profiles) {
        EXPECT_EQ(profile.size(), artifacts.interval_count());
        for (const arch::interval_profile& p : profile) {
            EXPECT_GT(p.instruction_count, 0u);
            EXPECT_GT(p.cpi_base, 0.0);
        }
    }
}

TEST(characterization_pipeline, trace_generation_parallel_is_bit_identical)
{
    const workload::benchmark_profile profile =
        workload::make_profile(kBenchmark, kThreads);
    const arch::program_trace serial = workload::generate_program_trace(profile, kSeed);

    runtime::thread_pool pool(4);
    const arch::program_trace parallel =
        workload::generate_program_trace(profile, kSeed, runtime::make_parallel_for(pool));
    expect_same_trace(serial, parallel);
}

TEST(characterization_pipeline, profiler_parallel_is_bit_identical)
{
    const workload::benchmark_profile profile =
        workload::make_profile(kBenchmark, kThreads);
    const arch::program_trace trace = workload::generate_program_trace(profile, kSeed);

    arch::multicore_profiler profiler({});
    const auto serial = profiler.profile(trace);

    runtime::thread_pool pool(4);
    const auto parallel = profiler.profile(trace, runtime::make_parallel_for(pool));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t t = 0; t < serial.size(); ++t) {
        ASSERT_EQ(serial[t].size(), parallel[t].size());
        for (std::size_t k = 0; k < serial[t].size(); ++k) {
            EXPECT_EQ(serial[t][k].instruction_count, parallel[t][k].instruction_count);
            EXPECT_EQ(serial[t][k].base_cycles, parallel[t][k].base_cycles);
            EXPECT_EQ(serial[t][k].cpi_base, parallel[t][k].cpi_base);
            EXPECT_EQ(serial[t][k].dcache_miss_rate, parallel[t][k].dcache_miss_rate);
            EXPECT_EQ(serial[t][k].branch_misprediction_rate,
                      parallel[t][k].branch_misprediction_rate);
        }
    }
}

TEST(characterization_pipeline, artifact_overload_matches_legacy_trace_overload)
{
    const core::program_characterizer program_chars;
    const core::program_artifacts artifacts =
        program_chars.characterize(kBenchmark, kThreads, kSeed);

    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    const core::characterizer chars(lib, vm, {});

    const core::stage_characterization staged = chars.characterize(artifacts, kStage);
    const core::stage_characterization legacy =
        chars.characterize(artifacts.trace, kStage);
    expect_same_characterization(staged, legacy);
}

TEST(characterization_pipeline, parallel_characterization_is_bit_identical)
{
    const core::program_characterizer program_chars;
    const core::program_artifacts artifacts =
        program_chars.characterize(kBenchmark, kThreads, kSeed);

    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    const core::characterizer chars(lib, vm, {});

    const core::stage_characterization serial = chars.characterize(artifacts, kStage);

    runtime::thread_pool pool(4);
    const core::stage_characterization parallel =
        chars.characterize(artifacts, kStage, runtime::make_parallel_for(pool));
    expect_same_characterization(serial, parallel);
}

TEST(characterization_pipeline, artifact_experiment_matches_direct_construction)
{
    const core::experiment_config config;
    const auto artifacts = core::make_program_artifacts(kBenchmark, config);
    const core::benchmark_experiment staged(artifacts, kStage, config);
    const core::benchmark_experiment direct(kBenchmark, kStage, config);

    EXPECT_EQ(staged.artifacts().get(), artifacts.get());
    EXPECT_EQ(staged.workload(), direct.workload());
    const double theta = direct.equal_weight_theta();
    EXPECT_EQ(staged.equal_weight_theta(), theta);
    for (const core::policy_kind kind : core::all_policies()) {
        const auto a = staged.run_policy(kind, theta);
        const auto b = direct.run_policy(kind, theta);
        EXPECT_EQ(a.sum.energy, b.sum.energy);
        EXPECT_EQ(a.sum.time_ps, b.sum.time_ps);
    }
}

TEST(characterization_pipeline, artifact_constructor_rejects_bad_inputs)
{
    const core::experiment_config config;
    const auto artifacts = core::make_program_artifacts(kBenchmark, config);

    EXPECT_THROW(core::benchmark_experiment(nullptr, kStage, config),
                 std::invalid_argument);

    core::experiment_config mismatched = config;
    mismatched.thread_count = 8;
    EXPECT_THROW(core::benchmark_experiment(artifacts, kStage, mismatched),
                 std::invalid_argument);

    core::experiment_config reseeded = config;
    reseeded.seed = config.seed + 1;
    EXPECT_THROW(core::benchmark_experiment(artifacts, kStage, reseeded),
                 std::invalid_argument);

    // A different core model changes the architectural profiles, so the
    // stamped provenance digest must reject it too.
    core::experiment_config remodeled = config;
    remodeled.characterization.core.dcache.miss_penalty_cycles += 6;
    EXPECT_THROW(core::benchmark_experiment(artifacts, kStage, remodeled),
                 std::invalid_argument);
}

} // namespace
