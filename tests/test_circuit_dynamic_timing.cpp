// Tests for circuit/dynamic_timing: toggle-driven sensitized delays.

#include <gtest/gtest.h>

#include <memory>

#include "circuit/dynamic_timing.h"
#include "circuit/netlist_builder.h"
#include "helpers.h"
#include "util/rng.h"

namespace {

using namespace synts::circuit;
using synts::test::netlist_evaluator;

TEST(dynamic_timing, no_toggle_means_zero_delay)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id y = nl.add_gate2(cell_kind::and2, a, b);
    nl.mark_output("y", y);

    netlist_evaluator eval(nl);
    const bool v1[2] = {true, false};
    (void)eval.step(std::span<const bool>(v1, 2));
    // Same vector again: nothing toggles.
    const double delay = eval.step(std::span<const bool>(v1, 2));
    EXPECT_DOUBLE_EQ(delay, 0.0);
}

TEST(dynamic_timing, masked_input_toggle_is_free)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id y = nl.add_gate2(cell_kind::and2, a, b);
    nl.mark_output("y", y);

    netlist_evaluator eval(nl);
    const bool v1[2] = {false, false};
    (void)eval.step(std::span<const bool>(v1, 2));
    // Toggling b while a = 0 cannot change the AND output.
    const bool v2[2] = {false, true};
    EXPECT_DOUBLE_EQ(eval.step(std::span<const bool>(v2, 2)), 0.0);
}

TEST(dynamic_timing, inverter_chain_delay_is_full_depth)
{
    netlist nl("chain");
    net_id n = nl.add_input("a");
    constexpr int depth = 12;
    for (int i = 0; i < depth; ++i) {
        n = nl.add_gate1(cell_kind::inv, n);
    }
    nl.mark_output("y", n);

    netlist_evaluator eval(nl);
    const bool lo[1] = {false};
    const bool hi[1] = {true};
    (void)eval.step(std::span<const bool>(lo, 1));
    const double delay = eval.step(std::span<const bool>(hi, 1));
    EXPECT_NEAR(delay, eval.nominal_period_ps(), 1e-9);
}

TEST(dynamic_timing, carry_chain_depth_tracks_sensitized_length)
{
    // Quiesce the adder at (0,0); then (2^k - 1) + 1 toggles exactly a
    // k-bit ripple, so measured delay must increase with k.
    netlist nl("adder");
    const auto a = nl.add_input_bus("a", 32);
    const auto b = nl.add_input_bus("b", 32);
    const auto cin = nl.add_input("cin");
    const auto sum = add_ripple_adder(nl, a, b, cin);
    nl.mark_output_bus("sum", sum.sum);
    nl.mark_output("cout", sum.carry_out);

    netlist_evaluator eval(nl);
    double previous = 0.0;
    for (const std::uint32_t k : {4u, 8u, 16u, 24u, 31u}) {
        const std::array<std::pair<std::uint64_t, std::size_t>, 3> quiet = {
            {{0, 32}, {0, 32}, {0, 1}}};
        eval.step_fields(quiet);
        const std::uint64_t ones = (1ull << k) - 1;
        const std::array<std::pair<std::uint64_t, std::size_t>, 3> sensitize = {
            {{ones, 32}, {1, 32}, {0, 1}}};
        const double delay = eval.step_fields(sensitize);
        ASSERT_GT(delay, previous) << "k=" << k;
        previous = delay;
    }
    // The longest chain approaches the stage critical path.
    EXPECT_GT(previous, 0.8 * eval.nominal_period_ps());
}

TEST(dynamic_timing, reset_clears_state)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    const net_id y = nl.add_gate1(cell_kind::inv, a);
    nl.mark_output("y", y);

    netlist_evaluator eval(nl);
    const bool hi[1] = {true};
    (void)eval.step(std::span<const bool>(hi, 1));
    eval.reset();
    // After reset the state is all-zero; driving zero toggles nothing
    // (inputs), but the inverter output recomputes from 0 to 1.
    const bool lo[1] = {false};
    const double delay = eval.step(std::span<const bool>(lo, 1));
    EXPECT_GT(delay, 0.0); // inv output 0 -> 1 counts as a toggle
}

TEST(dynamic_timing, corners_share_the_same_toggles)
{
    const stage_netlist stage = build_simple_alu();
    const cell_library lib = cell_library::standard_22nm();
    const voltage_model vm(0.04);
    const auto corners = paper_voltage_levels();
    dynamic_timing_simulator sim(stage.nl, lib, vm, corners);

    synts::util::xoshiro256 rng(5);
    const std::size_t width = stage.nl.input_count();
    auto bits = std::make_unique<bool[]>(width);
    std::vector<double> delays(corners.size());
    for (int round = 0; round < 100; ++round) {
        for (std::size_t i = 0; i < width; ++i) {
            bits[i] = rng.bernoulli(0.5);
        }
        (void)sim.step(std::span<const bool>(bits.get(), width), delays);
        // Lower supply -> strictly larger (or equal when zero) delay.
        for (std::size_t c = 1; c < corners.size(); ++c) {
            if (delays[0] == 0.0) {
                ASSERT_DOUBLE_EQ(delays[c], 0.0);
            } else {
                ASSERT_GT(delays[c], delays[c - 1] * 0.999);
            }
        }
    }
}

TEST(dynamic_timing, normalized_delay_nearly_voltage_invariant)
{
    // With per-class spread the ratio delay / t_nom should move only
    // slightly across corners -- the foundation of the paper's
    // single-voltage sampling extrapolation.
    const stage_netlist stage = build_simple_alu();
    const cell_library lib = cell_library::standard_22nm();
    const voltage_model vm(0.04);
    const auto corners = paper_voltage_levels();
    dynamic_timing_simulator sim(stage.nl, lib, vm, corners);

    synts::util::xoshiro256 rng(7);
    const std::size_t width = stage.nl.input_count();
    auto bits = std::make_unique<bool[]>(width);
    std::vector<double> delays(corners.size());
    for (int round = 0; round < 50; ++round) {
        for (std::size_t i = 0; i < width; ++i) {
            bits[i] = rng.bernoulli(0.5);
        }
        (void)sim.step(std::span<const bool>(bits.get(), width), delays);
        if (delays[0] < 1.0) {
            continue;
        }
        const double r0 = delays[0] / sim.nominal_period_ps(0);
        for (std::size_t c = 1; c < corners.size(); ++c) {
            const double rc = delays[c] / sim.nominal_period_ps(c);
            ASSERT_NEAR(rc, r0, 0.06) << "corner " << c;
        }
    }
}

TEST(dynamic_timing, rejects_bad_buffer_sizes)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    nl.mark_output("a", a);
    const cell_library lib = cell_library::standard_22nm();
    const voltage_model vm(0.0);
    const double corner = 1.0;
    dynamic_timing_simulator sim(nl, lib, vm, std::span<const double>(&corner, 1));

    const bool two[2] = {false, true};
    double one_delay = 0.0;
    EXPECT_THROW((void)sim.step(std::span<const bool>(two, 2),
                                std::span<double>(&one_delay, 1)),
                 std::invalid_argument);
    const bool one[1] = {false};
    std::vector<double> wrong(3);
    EXPECT_THROW((void)sim.step(std::span<const bool>(one, 1), wrong),
                 std::invalid_argument);
}

} // namespace
