// Tests for storage/artifact_store and the disk tier it provides: sharded
// layout and atomic publish, the experiment cache's memory -> disk ->
// compute fall-through, every corruption class (truncated, bit-flipped,
// wrong-version, wrong-digest files) degrading to a rebuild -- never a
// crash, never stale data -- sweep checkpointing with --resume semantics,
// and two caches racing on one shared store directory (the TSan job runs
// this suite with two concurrent runners).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/experiment.h"
#include "runtime/experiment_cache.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"

namespace {

using namespace synts;
namespace fs = std::filesystem;

constexpr auto kBenchmark = workload::benchmark_id::radix;

/// Self-cleaning unique directory under the system temp dir.
struct temp_dir {
    fs::path path;

    temp_dir()
    {
        static std::atomic<std::uint64_t> counter{0};
        path = fs::temp_directory_path() /
               ("synts_store_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }
    ~temp_dir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/// The program-tier store key the cache uses for (benchmark, config).
std::uint64_t program_key_digest(workload::benchmark_id benchmark,
                                 const core::experiment_config& config)
{
    return runtime::program_key{benchmark, config.workload_digest()}.digest();
}

void corrupt_file(const fs::path& path, std::size_t byte, std::uint8_t mask)
{
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file) << path;
    file.seekg(static_cast<std::streamoff>(byte));
    char c = 0;
    file.get(c);
    file.seekp(static_cast<std::streamoff>(byte));
    file.put(static_cast<char>(static_cast<std::uint8_t>(c) ^ mask));
}

void truncate_file(const fs::path& path, std::size_t keep_bytes)
{
    fs::resize_file(path, keep_bytes);
}

bool same_artifacts(const core::program_artifacts& a, const core::program_artifacts& b)
{
    if (a.workload != b.workload || a.thread_count != b.thread_count ||
        a.seed != b.seed || a.workload_digest != b.workload_digest) {
        return false;
    }
    // Frames are canonical (field-by-field little-endian), so byte equality
    // of the encodings IS bit equality of every field.
    return storage::encode(a) == storage::encode(b);
}

bool same_cells(const runtime::sweep_cell& a, const runtime::sweep_cell& b)
{
    return storage::encode(a) == storage::encode(b);
}

// -- raw store behavior -----------------------------------------------------

TEST(storage_store, blob_round_trip_layout_and_counters)
{
    temp_dir dir;
    storage::artifact_store store(dir.path);
    EXPECT_EQ(store.root(), dir.path);

    const std::uint64_t key = 0xABCDEF0011223344ull;
    EXPECT_FALSE(store.contains(storage::program_bucket, key));
    EXPECT_EQ(store.load(storage::program_bucket, key), std::nullopt);
    EXPECT_EQ(store.load_miss_count(), 1u);

    ASSERT_TRUE(store.store(storage::program_bucket, key, "some frame bytes"));
    EXPECT_TRUE(store.contains(storage::program_bucket, key));
    EXPECT_EQ(store.load(storage::program_bucket, key), "some frame bytes");
    EXPECT_EQ(store.load_hit_count(), 1u);
    EXPECT_EQ(store.store_count(), 1u);

    // Sharded, versioned layout: v<format_version>/<bucket>/<top byte>/<hex16>.bin.
    const fs::path version_dir = "v" + std::to_string(storage::format_version);
    const fs::path expected = dir.path / version_dir / "program" / "ab" /
                              "abcdef0011223344.bin";
    EXPECT_EQ(store.entry_path(storage::program_bucket, key), expected);
    EXPECT_TRUE(fs::is_regular_file(expected));

    // Overwrite is a whole-file replace; no tmp files linger.
    ASSERT_TRUE(store.store(storage::program_bucket, key, "updated"));
    EXPECT_EQ(store.load(storage::program_bucket, key), "updated");
    EXPECT_TRUE(fs::is_empty(dir.path / version_dir / "tmp"));

    store.erase(storage::program_bucket, key);
    EXPECT_FALSE(store.contains(storage::program_bucket, key));

    // Distinct buckets do not collide on one key.
    ASSERT_TRUE(store.store(storage::cell_bucket, key, "cell bytes"));
    EXPECT_FALSE(store.contains(storage::program_bucket, key));
    EXPECT_TRUE(store.contains(storage::cell_bucket, key));
}

TEST(storage_store, orphaned_tmp_files_are_reaped_on_open)
{
    temp_dir dir;
    {
        storage::artifact_store seed(dir.path); // create the layout
    }
    const fs::path tmp = dir.path / ("v" + std::to_string(storage::format_version)) / "tmp";
    // A staging file of a writer that can no longer exist (pid far above
    // any Linux pid_max), one with an unparseable name, and one of OURS.
    std::ofstream(tmp / "aaaa.999999999.0.tmp").put('x');
    std::ofstream(tmp / "garbage.tmp").put('x');
    const fs::path mine = tmp / ("bbbb." + std::to_string(::getpid()) + ".0.tmp");
    std::ofstream(mine).put('x');

    storage::artifact_store store(dir.path); // reaps stale entries on open
    EXPECT_FALSE(fs::exists(tmp / "aaaa.999999999.0.tmp"));
    EXPECT_FALSE(fs::exists(tmp / "garbage.tmp"));
    EXPECT_TRUE(fs::exists(mine)) << "a live writer's staging file was reaped";
}

TEST(storage_store, unusable_root_is_a_constructor_error)
{
    // A root that exists as a FILE can never become a store directory.
    temp_dir dir;
    const fs::path blocked = dir.path / "blocked";
    std::ofstream(blocked).put('x');
    EXPECT_THROW(storage::artifact_store{blocked}, std::runtime_error);
}

// -- disk tier of the experiment cache --------------------------------------

TEST(storage_store, warm_cache_restores_artifacts_without_computing)
{
    temp_dir dir;
    const core::experiment_config config;

    // Cold process: computes, writes back.
    runtime::experiment_cache cold;
    cold.attach_store(std::make_shared<storage::artifact_store>(dir.path));
    const auto computed = cold.get_or_create_program(kBenchmark, config);
    EXPECT_EQ(cold.disk_hit_count(), 0u);
    EXPECT_EQ(cold.disk_miss_count(), 1u);
    EXPECT_EQ(cold.program_compute_count(), 1u);
    EXPECT_TRUE(cold.store()->contains(storage::program_bucket,
                                       program_key_digest(kBenchmark, config)));

    // Warm "process" (fresh cache, fresh store handle, same directory):
    // the artifacts come off disk -- zero trace generations -- and are bit
    // identical to the computed ones.
    runtime::experiment_cache warm;
    warm.attach_store(std::make_shared<storage::artifact_store>(dir.path));
    const auto restored = warm.get_or_create_program(kBenchmark, config);
    EXPECT_EQ(warm.disk_hit_count(), 1u);
    EXPECT_EQ(warm.disk_miss_count(), 0u);
    EXPECT_EQ(warm.program_compute_count(), 0u);
    EXPECT_TRUE(same_artifacts(*computed, *restored));
    EXPECT_NO_THROW(restored->validate());

    // The acceptance pin: disk-tier hits cover every program-tier lookup
    // that memory could not serve.
    EXPECT_EQ(warm.disk_hit_count(), warm.program_miss_count());
}

TEST(storage_store, full_experiment_from_disk_artifacts_is_bit_identical)
{
    temp_dir dir;
    runtime::experiment_cache cold;
    cold.attach_store(std::make_shared<storage::artifact_store>(dir.path));
    const auto from_compute =
        cold.get_or_create(kBenchmark, circuit::pipe_stage::simple_alu);

    runtime::experiment_cache warm;
    warm.attach_store(std::make_shared<storage::artifact_store>(dir.path));
    const auto from_disk =
        warm.get_or_create(kBenchmark, circuit::pipe_stage::simple_alu);
    EXPECT_EQ(warm.program_compute_count(), 0u);

    const double theta = from_compute->equal_weight_theta();
    EXPECT_EQ(from_disk->equal_weight_theta(), theta);
    for (const core::policy_kind kind : core::all_policies()) {
        const auto a = from_compute->run_policy(kind, theta);
        const auto b = from_disk->run_policy(kind, theta);
        EXPECT_EQ(a.sum.energy, b.sum.energy);
        EXPECT_EQ(a.sum.time_ps, b.sum.time_ps);
    }
}

TEST(storage_store, every_corruption_class_is_a_miss_and_gets_rebuilt)
{
    const core::experiment_config config;

    struct corruption {
        const char* name;
        void (*apply)(const fs::path&);
    };
    const corruption corruptions[] = {
        {"truncated", [](const fs::path& p) { truncate_file(p, 40); }},
        {"truncated to zero", [](const fs::path& p) { truncate_file(p, 0); }},
        {"bit-flipped payload", [](const fs::path& p) { corrupt_file(p, 60, 0x10); }},
        {"bit-flipped checksum",
         [](const fs::path& p) {
             corrupt_file(p, fs::file_size(p) - 1, 0x01);
         }},
        {"wrong version", [](const fs::path& p) { corrupt_file(p, 8, 0x02); }},
        {"bad magic", [](const fs::path& p) { corrupt_file(p, 0, 0xFF); }},
    };

    for (const corruption& c : corruptions) {
        SCOPED_TRACE(c.name);
        temp_dir dir;
        {
            runtime::experiment_cache seeder;
            seeder.attach_store(std::make_shared<storage::artifact_store>(dir.path));
            (void)seeder.get_or_create_program(kBenchmark, config);
        }
        storage::artifact_store probe(dir.path);
        const fs::path entry = probe.entry_path(
            storage::program_bucket, program_key_digest(kBenchmark, config));
        ASSERT_TRUE(fs::is_regular_file(entry));
        c.apply(entry);

        // The corrupt file is a miss: rebuilt, never crashed, never served.
        runtime::experiment_cache victim;
        victim.attach_store(std::make_shared<storage::artifact_store>(dir.path));
        const auto rebuilt = victim.get_or_create_program(kBenchmark, config);
        EXPECT_EQ(victim.disk_hit_count(), 0u);
        EXPECT_EQ(victim.disk_miss_count(), 1u);
        EXPECT_EQ(victim.program_compute_count(), 1u);
        EXPECT_NO_THROW(rebuilt->validate());
        EXPECT_EQ(rebuilt->seed, config.seed);
        EXPECT_EQ(rebuilt->workload_digest, config.workload_digest());

        // ... and the rebuild repaired the store: the next fresh cache hits.
        runtime::experiment_cache repaired;
        repaired.attach_store(std::make_shared<storage::artifact_store>(dir.path));
        (void)repaired.get_or_create_program(kBenchmark, config);
        EXPECT_EQ(repaired.disk_hit_count(), 1u);
        EXPECT_EQ(repaired.program_compute_count(), 0u);
    }
}

TEST(storage_store, wrong_digest_entry_is_a_miss_never_stale_data)
{
    // A VALID frame parked under the wrong key (here: seed-43 artifacts
    // where seed-42 artifacts belong) must be rejected by the provenance
    // stamp -- the invalidation contract is digest mismatch => miss.
    temp_dir dir;
    core::experiment_config seed42;
    seed42.seed = 42;
    core::experiment_config seed43;
    seed43.seed = 43;

    {
        runtime::experiment_cache seeder;
        seeder.attach_store(std::make_shared<storage::artifact_store>(dir.path));
        (void)seeder.get_or_create_program(kBenchmark, seed43);
    }
    storage::artifact_store probe(dir.path);
    const auto frame43 =
        probe.load(storage::program_bucket, program_key_digest(kBenchmark, seed43));
    ASSERT_TRUE(frame43.has_value());
    ASSERT_TRUE(probe.store(storage::program_bucket,
                            program_key_digest(kBenchmark, seed42), *frame43));

    runtime::experiment_cache victim;
    victim.attach_store(std::make_shared<storage::artifact_store>(dir.path));
    const auto rebuilt = victim.get_or_create_program(kBenchmark, seed42);
    EXPECT_EQ(victim.disk_hit_count(), 0u);
    EXPECT_EQ(victim.program_compute_count(), 1u);
    EXPECT_EQ(rebuilt->seed, 42u); // the request's workload, not the file's
    EXPECT_EQ(rebuilt->workload_digest, seed42.workload_digest());
}

TEST(storage_store, detached_cache_never_touches_disk)
{
    runtime::experiment_cache cache;
    (void)cache.get_or_create_program(kBenchmark);
    EXPECT_EQ(cache.store(), nullptr);
    EXPECT_EQ(cache.disk_hit_count(), 0u);
    EXPECT_EQ(cache.disk_miss_count(), 0u);
    EXPECT_EQ(cache.program_compute_count(), 1u);
}

// -- concurrent runners sharing one store directory -------------------------

TEST(storage_store, two_runners_race_on_one_store_directory)
{
    // Two independent caches (separate store handles, one directory) pull
    // the same workloads concurrently -- the worst case for write-back
    // racing: both miss, both compute, both publish the same key. Atomic
    // rename makes the race benign; both must end with valid, identical
    // artifacts. Run under TSan by the CI storage job.
    temp_dir dir;
    const core::experiment_config config;

    runtime::experiment_cache caches[2];
    std::shared_ptr<const core::program_artifacts> results[2];
    std::thread runners[2];
    for (int i = 0; i < 2; ++i) {
        caches[i].attach_store(std::make_shared<storage::artifact_store>(dir.path));
        runners[i] = std::thread([&, i] {
            results[i] = caches[i].get_or_create_program(kBenchmark, config);
        });
    }
    for (std::thread& runner : runners) {
        runner.join();
    }

    ASSERT_NE(results[0], nullptr);
    ASSERT_NE(results[1], nullptr);
    EXPECT_TRUE(same_artifacts(*results[0], *results[1]));
    EXPECT_NO_THROW(results[0]->validate());

    // Whoever lost the publish race left a fully valid entry behind.
    runtime::experiment_cache after;
    after.attach_store(std::make_shared<storage::artifact_store>(dir.path));
    (void)after.get_or_create_program(kBenchmark, config);
    EXPECT_EQ(after.disk_hit_count(), 1u);
    EXPECT_EQ(after.program_compute_count(), 0u);
}

// -- sweep checkpointing and resume -----------------------------------------

runtime::sweep_spec checkpoint_spec()
{
    runtime::sweep_spec spec;
    spec.benchmarks = {kBenchmark};
    spec.stages = {circuit::pipe_stage::simple_alu};
    spec.policies = {core::policy_kind::nominal, core::policy_kind::synts_offline};
    spec.theta_multipliers = {0.5, 1.0};
    return spec;
}

TEST(storage_store, warm_sweep_re_run_computes_nothing_and_matches_bit_for_bit)
{
    temp_dir dir;
    const runtime::sweep_spec spec = checkpoint_spec();
    runtime::thread_pool pool(2);

    // Cold run: store attached, everything computed and persisted.
    runtime::experiment_cache cold_cache;
    auto cold_store = std::make_shared<storage::artifact_store>(dir.path);
    cold_cache.attach_store(cold_store);
    const runtime::sweep_result cold = runtime::sweep_scheduler(pool, cold_cache)
                                           .run(spec, {cold_store.get(), false});
    EXPECT_EQ(cold.program_computes, 1u);
    EXPECT_EQ(cold.cells_stored, 2u);
    EXPECT_EQ(cold.cells_loaded, 0u);

    // Warm run, NO resume: cells recomputed from disk-tier artifacts --
    // zero trace generations, disk hits covering every program miss, and
    // cell-for-cell bit-identical results.
    runtime::experiment_cache warm_cache;
    auto warm_store = std::make_shared<storage::artifact_store>(dir.path);
    warm_cache.attach_store(warm_store);
    const runtime::sweep_result warm = runtime::sweep_scheduler(pool, warm_cache)
                                           .run(spec, {warm_store.get(), false});
    EXPECT_EQ(warm.program_computes, 0u);
    EXPECT_EQ(warm.disk_hits, warm.program_cache_misses);
    EXPECT_EQ(warm.disk_misses, 0u);
    EXPECT_EQ(warm.cells_loaded, 0u);
    ASSERT_EQ(warm.cells.size(), cold.cells.size());
    for (std::size_t i = 0; i < cold.cells.size(); ++i) {
        EXPECT_TRUE(same_cells(cold.cells[i], warm.cells[i])) << "cell " << i;
    }

    // Resumed run: cells restored outright; no cache traffic at all.
    runtime::experiment_cache resumed_cache;
    auto resumed_store = std::make_shared<storage::artifact_store>(dir.path);
    resumed_cache.attach_store(resumed_store);
    const runtime::sweep_result resumed =
        runtime::sweep_scheduler(pool, resumed_cache)
            .run(spec, {resumed_store.get(), true});
    EXPECT_EQ(resumed.cells_loaded, 2u);
    EXPECT_EQ(resumed.program_cache_misses, 0u);
    EXPECT_EQ(resumed.program_computes, 0u);
    EXPECT_EQ(resumed.cache_misses, 0u);
    for (std::size_t i = 0; i < cold.cells.size(); ++i) {
        EXPECT_TRUE(same_cells(cold.cells[i], resumed.cells[i])) << "cell " << i;
    }
}

TEST(storage_store, resume_recomputes_only_the_missing_cells)
{
    temp_dir dir;
    const runtime::sweep_spec spec = checkpoint_spec();
    runtime::thread_pool pool(2);

    runtime::experiment_cache cold_cache;
    auto store = std::make_shared<storage::artifact_store>(dir.path);
    cold_cache.attach_store(store);
    const runtime::sweep_result cold =
        runtime::sweep_scheduler(pool, cold_cache).run(spec, {store.get(), false});

    // Simulate a sweep killed mid-run: cell 1's checkpoint never landed.
    store->erase(storage::cell_bucket, runtime::sweep_cell_digest(spec.digest(), 1));

    runtime::experiment_cache resumed_cache;
    auto resumed_store = std::make_shared<storage::artifact_store>(dir.path);
    resumed_cache.attach_store(resumed_store);
    const runtime::sweep_result resumed =
        runtime::sweep_scheduler(pool, resumed_cache)
            .run(spec, {resumed_store.get(), true});

    EXPECT_EQ(resumed.cells_loaded, 1u);  // cell 0 restored
    EXPECT_EQ(resumed.cells_stored, 1u);  // cell 1 recomputed and re-persisted
    EXPECT_EQ(resumed.program_computes, 0u); // artifacts still come off disk
    for (std::size_t i = 0; i < cold.cells.size(); ++i) {
        EXPECT_TRUE(same_cells(cold.cells[i], resumed.cells[i])) << "cell " << i;
    }

    // A corrupt checkpoint is equivalent to a missing one.
    corrupt_file(resumed_store->entry_path(storage::cell_bucket,
                                           runtime::sweep_cell_digest(spec.digest(), 0)),
                 20, 0x40);
    runtime::experiment_cache again_cache;
    auto again_store = std::make_shared<storage::artifact_store>(dir.path);
    again_cache.attach_store(again_store);
    const runtime::sweep_result again =
        runtime::sweep_scheduler(pool, again_cache)
            .run(spec, {again_store.get(), true});
    EXPECT_EQ(again.cells_loaded, 1u);
    EXPECT_EQ(again.cells_stored, 1u);
    EXPECT_TRUE(same_cells(cold.cells[0], again.cells[0]));
}

TEST(storage_store, resume_keys_on_the_spec_a_different_sweep_shares_nothing)
{
    temp_dir dir;
    runtime::thread_pool pool(2);

    runtime::experiment_cache first_cache;
    auto store = std::make_shared<storage::artifact_store>(dir.path);
    first_cache.attach_store(store);
    const runtime::sweep_spec spec = checkpoint_spec();
    (void)runtime::sweep_scheduler(pool, first_cache).run(spec, {store.get(), false});

    // Same pair, different theta ladder: every cell key changes, so resume
    // must restore nothing (stale checkpoints cannot leak across specs) --
    // while the program artifacts, keyed on workload alone, still hit.
    runtime::sweep_spec changed = spec;
    changed.theta_multipliers = {0.25, 4.0};
    ASSERT_NE(changed.digest(), spec.digest());

    runtime::experiment_cache second_cache;
    auto second_store = std::make_shared<storage::artifact_store>(dir.path);
    second_cache.attach_store(second_store);
    const runtime::sweep_result result =
        runtime::sweep_scheduler(pool, second_cache)
            .run(changed, {second_store.get(), true});
    EXPECT_EQ(result.cells_loaded, 0u);
    EXPECT_EQ(result.cells_stored, 2u);
    EXPECT_EQ(result.program_computes, 0u);
}

} // namespace
