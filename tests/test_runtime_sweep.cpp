// Tests for runtime/sweep + sweep_io: spec expansion, scheduler results
// bit-identical to the serial pareto_sweep path, schedule independence
// across worker counts, error propagation, concurrent use of one shared
// benchmark_experiment (the run_policy/pareto_sweep thread-safety
// contract), and the CSV/JSON emitters and name parsers the runner CLI
// uses.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "util/hashing.h"

namespace {

using namespace synts;
using core::policy_kind;

runtime::sweep_spec small_spec()
{
    runtime::sweep_spec spec;
    spec.benchmarks = {workload::benchmark_id::radix};
    spec.stages = {circuit::pipe_stage::simple_alu, circuit::pipe_stage::decode};
    spec.policies = {policy_kind::synts_offline, policy_kind::per_core_ts};
    spec.theta_multipliers = {0.5, 1.0, 2.0};
    return spec;
}

TEST(runtime_sweep, expansion_cross_product_and_explicit_pairs)
{
    runtime::sweep_spec spec = small_spec();
    EXPECT_EQ(spec.expanded_pairs().size(), 2u);
    EXPECT_EQ(spec.task_count(), 4u);

    spec.pairs = {{workload::benchmark_id::fmm, circuit::pipe_stage::complex_alu}};
    ASSERT_EQ(spec.expanded_pairs().size(), 1u); // explicit list wins
    EXPECT_EQ(spec.expanded_pairs()[0].first, workload::benchmark_id::fmm);
    EXPECT_EQ(spec.task_count(), 2u);
}

TEST(runtime_sweep, scheduler_matches_serial_sweep_bit_for_bit)
{
    const runtime::sweep_spec spec = small_spec();

    runtime::thread_pool pool(4);
    runtime::experiment_cache cache;
    const runtime::sweep_scheduler scheduler(pool, cache);
    const runtime::sweep_result result = scheduler.run(spec);

    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.cache_misses, 2u); // one per pair
    EXPECT_EQ(result.cache_hits, 0u);   // per-pair tasks fetch once, share across cells

    for (const auto& [benchmark, stage] : spec.expanded_pairs()) {
        const core::benchmark_experiment serial(benchmark, stage, spec.config);
        const double theta_eq = serial.equal_weight_theta();
        for (const policy_kind kind : spec.policies) {
            const runtime::sweep_cell* cell = result.find(benchmark, stage, kind);
            ASSERT_NE(cell, nullptr);
            EXPECT_EQ(cell->theta_eq, theta_eq);

            const auto serial_run = serial.run_policy(kind, theta_eq);
            EXPECT_EQ(cell->equal_weight.sum.energy, serial_run.sum.energy);
            EXPECT_EQ(cell->equal_weight.sum.time_ps, serial_run.sum.time_ps);

            const auto serial_front =
                core::pareto_sweep(serial, kind, spec.theta_multipliers);
            ASSERT_EQ(cell->pareto.size(), serial_front.size());
            for (std::size_t i = 0; i < serial_front.size(); ++i) {
                EXPECT_EQ(cell->pareto[i].theta, serial_front[i].theta);
                EXPECT_EQ(cell->pareto[i].energy, serial_front[i].energy);
                EXPECT_EQ(cell->pareto[i].time, serial_front[i].time);
            }
        }
    }
}

TEST(runtime_sweep, results_independent_of_worker_count)
{
    runtime::sweep_spec spec = small_spec();
    spec.stages = {circuit::pipe_stage::simple_alu};

    std::vector<runtime::sweep_result> results;
    for (const std::size_t workers : {1u, 3u}) {
        runtime::thread_pool pool(workers);
        runtime::experiment_cache cache;
        results.push_back(runtime::sweep_scheduler(pool, cache).run(spec));
    }
    ASSERT_EQ(results[0].cells.size(), results[1].cells.size());
    for (std::size_t c = 0; c < results[0].cells.size(); ++c) {
        const auto& a = results[0].cells[c];
        const auto& b = results[1].cells[c];
        EXPECT_EQ(a.workload, b.workload); // cell order is schedule-independent
        EXPECT_EQ(a.policy, b.policy);
        EXPECT_EQ(a.theta_eq, b.theta_eq);
        EXPECT_EQ(a.task_seed, b.task_seed);
        EXPECT_EQ(a.equal_weight.sum.energy, b.equal_weight.sum.energy);
        ASSERT_EQ(a.pareto.size(), b.pareto.size());
        for (std::size_t i = 0; i < a.pareto.size(); ++i) {
            EXPECT_EQ(a.pareto[i].energy, b.pareto[i].energy);
            EXPECT_EQ(a.pareto[i].time, b.pareto[i].time);
        }
    }
}

TEST(runtime_sweep, task_seeds_are_deterministic_streams)
{
    runtime::thread_pool pool(2);
    runtime::experiment_cache cache;
    runtime::sweep_spec spec = small_spec();
    spec.stages = {circuit::pipe_stage::simple_alu};
    const runtime::sweep_result result = runtime::sweep_scheduler(pool, cache).run(spec);
    ASSERT_EQ(result.cells.size(), 2u);
    EXPECT_EQ(result.cells[0].task_seed, util::hash_mix(spec.config.seed, 0));
    EXPECT_EQ(result.cells[1].task_seed, util::hash_mix(spec.config.seed, 1));
    EXPECT_NE(result.cells[0].task_seed, result.cells[1].task_seed);
}

TEST(runtime_sweep, nested_run_on_single_worker_pool_does_not_deadlock)
{
    // run() may be called from inside a pool task (composed sweeps); the
    // helping wait must drain the cells even when the caller occupies the
    // pool's only worker.
    runtime::thread_pool pool(1);
    runtime::experiment_cache cache;
    runtime::sweep_spec spec = small_spec();
    spec.stages = {circuit::pipe_stage::simple_alu};
    spec.policies = {policy_kind::nominal};
    spec.theta_multipliers.clear();

    auto outer = pool.submit([&] {
        const runtime::sweep_result nested =
            runtime::sweep_scheduler(pool, cache).run(spec);
        return nested.cells.size();
    });
    EXPECT_EQ(outer.get(), 1u);
}

TEST(runtime_sweep, cell_errors_propagate)
{
    runtime::thread_pool pool(2);
    runtime::experiment_cache cache;
    runtime::sweep_spec spec = small_spec();
    spec.config.thread_count = 0; // experiment construction throws
    EXPECT_THROW((void)runtime::sweep_scheduler(pool, cache).run(spec),
                 std::invalid_argument);
}

TEST(runtime_sweep, shared_experiment_safe_for_concurrent_policy_runs)
{
    // The cache hands ONE experiment instance to every worker; run_policy,
    // make_solver_input and pareto_sweep must therefore be const all the
    // way down. Hammer one instance from several threads and require
    // bit-identical outcomes to the serial call.
    runtime::experiment_cache cache;
    const auto experiment =
        cache.get_or_create(workload::benchmark_id::radix, circuit::pipe_stage::decode);
    const double theta = experiment->equal_weight_theta();
    const auto expected = experiment->run_policy(policy_kind::synts_online, theta);
    const std::vector<double> ladder = {0.5, 1.0};
    const auto expected_front =
        core::pareto_sweep(*experiment, policy_kind::synts_offline, ladder);

    runtime::thread_pool pool(4);
    std::vector<std::future<void>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back(pool.submit([&] {
            const auto run = experiment->run_policy(policy_kind::synts_online, theta);
            ASSERT_EQ(run.sum.energy, expected.sum.energy);
            ASSERT_EQ(run.sum.time_ps, expected.sum.time_ps);
            const auto front =
                core::pareto_sweep(*experiment, policy_kind::synts_offline, ladder);
            ASSERT_EQ(front.size(), expected_front.size());
            for (std::size_t p = 0; p < front.size(); ++p) {
                ASSERT_EQ(front[p].energy, expected_front[p].energy);
                ASSERT_EQ(front[p].time, expected_front[p].time);
            }
        }));
    }
    for (auto& task : tasks) {
        task.get();
    }
}

TEST(runtime_sweep, emitters_cover_every_cell)
{
    runtime::thread_pool pool(2);
    runtime::experiment_cache cache;
    runtime::sweep_spec spec = small_spec();
    spec.stages = {circuit::pipe_stage::simple_alu};
    const runtime::sweep_result result = runtime::sweep_scheduler(pool, cache).run(spec);

    std::ostringstream pareto_csv;
    runtime::write_pareto_csv(result, pareto_csv);
    // header + cells * multipliers rows
    const std::string pareto_text = pareto_csv.str();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(pareto_text.begin(), pareto_text.end(), '\n')),
              1 + result.cells.size() * spec.theta_multipliers.size());
    EXPECT_NE(pareto_text.find("Radix"), std::string::npos);

    std::ostringstream summary_csv;
    runtime::write_summary_csv(result, summary_csv);
    const std::string summary_text = summary_csv.str();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(summary_text.begin(), summary_text.end(), '\n')),
              1 + result.cells.size());

    std::ostringstream json;
    runtime::write_sweep_json(result, json);
    const std::string json_text = json.str();
    EXPECT_NE(json_text.find("\"cells\""), std::string::npos);
    EXPECT_NE(json_text.find("synts_offline"), std::string::npos);
    EXPECT_NE(json_text.find("per_core_ts"), std::string::npos);

    EXPECT_NE(runtime::render_sweep_table(result).find("Radix"), std::string::npos);

    // A store-less run reports empty disk and checkpoint tiers (no phantom
    // "checkpoint misses" from a tier that never ran).
    EXPECT_FALSE(result.checkpointing);
    EXPECT_EQ(result.cells_missed(), 0u);
    const std::string stats =
        runtime::render_cache_stats(result, runtime::cache_stats_format::csv);
    EXPECT_NE(stats.find("disk,0,0"), std::string::npos);
    EXPECT_NE(stats.find("checkpoint,0,0"), std::string::npos);
}

TEST(runtime_sweep, name_parsers_are_forgiving)
{
    EXPECT_EQ(runtime::parse_benchmark("lu-contig"), workload::benchmark_id::lu_contig);
    EXPECT_EQ(runtime::parse_benchmark("LU_CONTIG"), workload::benchmark_id::lu_contig);
    EXPECT_EQ(runtime::parse_benchmark("nonesuch"), std::nullopt);
    EXPECT_EQ(runtime::parse_stage("SimpleALU"), circuit::pipe_stage::simple_alu);
    EXPECT_EQ(runtime::parse_stage("simple_alu"), circuit::pipe_stage::simple_alu);
    EXPECT_EQ(runtime::parse_policy("per-core-ts"), policy_kind::per_core_ts);
    EXPECT_EQ(runtime::parse_policy("Per-core TS"), policy_kind::per_core_ts);
    EXPECT_EQ(runtime::parse_policy("nonesuch"), std::nullopt);
    EXPECT_EQ(runtime::parse_benchmark_list("reported").size(), 7u);
    EXPECT_EQ(runtime::parse_benchmark_list("all").size(), workload::benchmark_count);
    EXPECT_EQ(runtime::parse_stage_list("all").size(), circuit::pipe_stage_count);
    EXPECT_EQ(runtime::parse_policy_list("all").size(), core::policy_count);
    EXPECT_EQ(runtime::parse_policy_list("nominal,no_ts").size(), 2u);
    EXPECT_THROW((void)runtime::parse_benchmark_list("fmm,bogus"),
                 std::invalid_argument);
}

TEST(runtime_sweep, workload_parsers_resolve_registry_names)
{
    const workload::workload_registry& registry = workload::workload_registry::global();
    EXPECT_EQ(runtime::parse_workload(registry, "radix")->name, "Radix");
    EXPECT_EQ(runtime::parse_workload(registry, "Lock-Ladder")->name, "lock_ladder");
    EXPECT_EQ(runtime::parse_workload(registry, "nonesuch"), std::nullopt);
    EXPECT_EQ(runtime::parse_workload_list(registry, "reported").size(), 7u);
    EXPECT_EQ(runtime::parse_workload_list(registry, "splash2").size(),
              workload::benchmark_count);
    // "all" now means every registered workload: the ten plus the default
    // scenario instances at minimum.
    EXPECT_GE(runtime::parse_workload_list(registry, "all").size(),
              workload::benchmark_count + 6);
    EXPECT_THROW((void)runtime::parse_workload_list(registry, "fmm,bogus"),
                 std::invalid_argument);
    // The resolved key is the registry identity, so sweeps over parsed
    // names and sweeps over constructed keys cache-share.
    EXPECT_EQ(*runtime::parse_workload(registry, "fmm"),
              workload::builtin_key(workload::benchmark_id::fmm));
}

} // namespace
