// Cross-layer integration: the Razor replay of an actual sensitized-delay
// trace must agree with the empirical error model built from the same
// characterization -- and both must satisfy the Eq. 4.1 SPI identity.

#include <gtest/gtest.h>

#include "arch/razor.h"
#include "core/characterization.h"
#include "energy/energy_model.h"
#include "workload/splash2.h"

namespace {

using namespace synts;

class razor_validation : public ::testing::Test {
protected:
    static void SetUpTestSuite()
    {
        const auto lib = circuit::cell_library::standard_22nm();
        static circuit::voltage_model vm(0.04);
        core::characterization_config cfg;
        const core::characterizer chars(lib, vm, cfg);

        auto profile = workload::make_profile(workload::benchmark_id::radix, 4);
        profile.interval_count = 1;
        profile.instructions_per_interval = 8000;
        const auto program = workload::generate_program_trace(profile, 19);
        // The architectural profiles live with the artifacts, not the
        // per-stage characterization; keep both for the SPI identity test.
        const core::program_characterizer profiler(cfg.core);
        // gtest static-fixture idiom; TearDownTestSuite deletes both.
        artifacts = new core::program_artifacts( // synts-lint: allow(naked-new)
            profiler.characterize_trace(program));
        characterization = new core::stage_characterization( // synts-lint: allow(naked-new)
            chars.characterize(*artifacts, circuit::pipe_stage::simple_alu));
    }

    static void TearDownTestSuite()
    {
        delete characterization;
        characterization = nullptr;
        delete artifacts;
        artifacts = nullptr;
    }

    static core::program_artifacts* artifacts;
    static core::stage_characterization* characterization;
};

core::program_artifacts* razor_validation::artifacts = nullptr;
core::stage_characterization* razor_validation::characterization = nullptr;

TEST_F(razor_validation, replay_matches_empirical_exceedance)
{
    const auto& sc = *characterization;
    const double tnom = sc.tnom_ps[0];
    for (std::size_t t = 0; t < sc.threads.size(); ++t) {
        const auto& data = sc.threads[t][0];
        const auto model = sc.make_error_model(t, 0);
        std::vector<double> delays(data.sampling_delays_ps.begin(),
                                   data.sampling_delays_ps.end());
        for (const double r : {0.64, 0.784, 0.928}) {
            const arch::razor_run_stats stats =
                arch::replay_delay_trace(delays, r * tnom, 0);
            // Per-vector error rate from replay vs histogram exceedance.
            EXPECT_NEAR(stats.error_probability(),
                        model.vector_error_probability(0, r), 0.01)
                << "thread " << t << " r " << r;
        }
    }
}

TEST_F(razor_validation, per_instruction_error_includes_drive_fraction)
{
    const auto& sc = *characterization;
    const auto& data = sc.threads[0][0];
    const auto model = sc.make_error_model(0, 0);
    const double drive = data.drive_fraction();
    EXPECT_GT(drive, 0.2);
    EXPECT_LT(drive, 0.9);
    EXPECT_NEAR(model.error_probability(0, 0.7),
                model.vector_error_probability(0, 0.7) * drive, 1e-12);
}

TEST_F(razor_validation, spi_identity_on_real_trace)
{
    const auto& sc = *characterization;
    const auto& data = sc.threads[0][0];
    const double tnom = sc.tnom_ps[0];
    const double cpi_base = artifacts->arch_profiles[0][0].cpi_base;

    std::vector<double> delays(data.sampling_delays_ps.begin(),
                               data.sampling_delays_ps.end());
    const double t_clk = 0.7 * tnom;
    // Base cycles for the *vectors* window.
    const auto base_cycles = static_cast<std::uint64_t>(
        cpi_base * static_cast<double>(delays.size()));
    const arch::razor_run_stats stats =
        arch::replay_delay_trace(delays, t_clk, base_cycles);

    const double expected = energy::seconds_per_instruction(
        t_clk, stats.error_probability(),
        static_cast<double>(base_cycles) / static_cast<double>(delays.size()),
        arch::razor_default_penalty_cycles);
    EXPECT_NEAR(stats.seconds_per_instruction(), expected, expected * 1e-9);
}

TEST_F(razor_validation, lower_voltage_corner_preserves_normalized_errors)
{
    // The paper's single-voltage sampling extrapolation: err(V, r) is
    // nearly voltage-independent. Check corners 0 and 4 (1.0 V vs 0.72 V).
    const auto& sc = *characterization;
    const auto model = sc.make_error_model(0, 0);
    for (const double r : {0.7, 0.8, 0.9}) {
        const double e0 = model.error_probability(0, r);
        const double e4 = model.error_probability(4, r);
        EXPECT_NEAR(e0, e4, 0.012 + 0.25 * e0) << "r=" << r;
    }
}

} // namespace
