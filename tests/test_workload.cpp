// Tests for workload/splash2: profile facts and trace generation.

#include <gtest/gtest.h>

#include <map>

#include "workload/splash2.h"

namespace {

using namespace synts::workload;
using synts::arch::op_class;

TEST(profiles, names_match_paper)
{
    EXPECT_EQ(benchmark_name(benchmark_id::fmm), "FMM");
    EXPECT_EQ(benchmark_name(benchmark_id::lu_ncontig), "Lu-nContig");
    EXPECT_EQ(benchmark_name(benchmark_id::water_sp), "Water-sp");
}

TEST(profiles, ten_total_seven_reported)
{
    EXPECT_EQ(all_benchmarks().size(), 10u);
    EXPECT_EQ(reported_benchmarks().size(), 7u);
    // FFT, Ocean and Water-sp are excluded (homogeneous error behavior).
    for (const benchmark_id id : reported_benchmarks()) {
        EXPECT_NE(id, benchmark_id::fft);
        EXPECT_NE(id, benchmark_id::ocean);
        EXPECT_NE(id, benchmark_id::water_sp);
    }
}

TEST(profiles, rejects_zero_threads)
{
    EXPECT_THROW(make_profile(benchmark_id::radix, 0), std::invalid_argument);
}

TEST(profiles, heterogeneous_benchmarks_have_distinct_thread_rows)
{
    for (const benchmark_id id : reported_benchmarks()) {
        const benchmark_profile p = make_profile(id, 4);
        ASSERT_EQ(p.threads.size(), 4u);
        // Thread 0 is the timing-speculation-critical thread.
        EXPECT_GT(p.threads[0].long_carry_fraction,
                  2.0 * p.threads[3].long_carry_fraction)
            << benchmark_name(id);
    }
}

TEST(profiles, homogeneous_benchmarks_have_identical_thread_rows)
{
    for (const benchmark_id id :
         {benchmark_id::fft, benchmark_id::ocean, benchmark_id::water_sp}) {
        const benchmark_profile p = make_profile(id, 4);
        for (std::size_t t = 1; t < 4; ++t) {
            EXPECT_DOUBLE_EQ(p.threads[t].long_carry_fraction,
                             p.threads[0].long_carry_fraction);
            EXPECT_DOUBLE_EQ(p.threads[t].register_collision_fraction,
                             p.threads[0].register_collision_fraction);
        }
    }
}

TEST(profiles, fft_error_rates_are_high)
{
    const benchmark_profile fft = make_profile(benchmark_id::fft, 4);
    const benchmark_profile radix = make_profile(benchmark_id::radix, 4);
    EXPECT_GT(fft.threads[0].long_carry_fraction,
              2.0 * radix.threads[0].long_carry_fraction);
    EXPECT_GE(fft.threads[0].carry_len_min, 20u);
}

TEST(profiles, fmm_has_short_intervals_and_low_error_scale)
{
    const benchmark_profile fmm = make_profile(benchmark_id::fmm, 4);
    const benchmark_profile radix = make_profile(benchmark_id::radix, 4);
    EXPECT_LT(fmm.instructions_per_interval, radix.instructions_per_interval);
    EXPECT_LT(fmm.threads[0].long_carry_fraction,
              0.1 * radix.threads[0].long_carry_fraction);
}

TEST(generation, deterministic_in_seed)
{
    const benchmark_profile p = make_profile(benchmark_id::barnes, 4);
    const auto a = generate_program_trace(p, 7);
    const auto b = generate_program_trace(p, 7);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        ASSERT_EQ(a.threads[t].ops.size(), b.threads[t].ops.size());
        for (std::size_t i = 0; i < a.threads[t].ops.size(); i += 97) {
            ASSERT_EQ(a.threads[t].ops[i].encoding, b.threads[t].ops[i].encoding);
            ASSERT_EQ(a.threads[t].ops[i].operand_a, b.threads[t].ops[i].operand_a);
        }
    }
}

TEST(generation, different_seed_differs)
{
    const benchmark_profile p = make_profile(benchmark_id::barnes, 4);
    const auto a = generate_program_trace(p, 1);
    const auto b = generate_program_trace(p, 2);
    bool any_difference = false;
    for (std::size_t i = 0; i < 1000 && !any_difference; ++i) {
        any_difference = a.threads[0].ops[i].encoding != b.threads[0].ops[i].encoding;
    }
    EXPECT_TRUE(any_difference);
}

TEST(generation, interval_structure_matches_profile)
{
    const benchmark_profile p = make_profile(benchmark_id::cholesky, 4);
    const auto program = generate_program_trace(p, 3);
    EXPECT_NO_THROW(program.validate());
    EXPECT_EQ(program.thread_count(), 4u);
    EXPECT_EQ(program.interval_count(), p.interval_count);
    for (std::size_t t = 0; t < 4; ++t) {
        const auto expected = static_cast<double>(p.instructions_per_interval) *
                              p.work_imbalance[t];
        for (std::size_t k = 0; k < p.interval_count; ++k) {
            EXPECT_NEAR(static_cast<double>(program.threads[t].interval(k).size()),
                        expected, 1.0);
        }
    }
}

TEST(generation, instruction_mix_tracks_profile_weights)
{
    benchmark_profile p = make_profile(benchmark_id::radix, 4);
    const auto program = generate_program_trace(p, 11);
    std::map<op_class, double> frequency;
    const auto& ops = program.threads[1].ops;
    for (const auto& op : ops) {
        frequency[op.cls] += 1.0 / static_cast<double>(ops.size());
    }
    double load_weight = 0.0;
    double total_weight = 0.0;
    for (std::size_t c = 0; c < synts::arch::op_class_count; ++c) {
        total_weight += p.threads[1].mix[c];
    }
    load_weight = p.threads[1].mix[static_cast<std::size_t>(op_class::load)] / total_weight;
    EXPECT_NEAR(frequency[op_class::load], load_weight, 0.02);
}

TEST(generation, collision_fraction_manifests_in_encodings)
{
    benchmark_profile p = make_profile(benchmark_id::cholesky, 4);
    const auto program = generate_program_trace(p, 13);
    auto collision_rate = [](const synts::arch::thread_trace& trace) {
        std::size_t collisions = 0;
        for (const auto& op : trace.ops) {
            const std::uint32_t rs = (op.encoding >> 21) & 31;
            const std::uint32_t rt = (op.encoding >> 16) & 31;
            collisions += rs == rt ? 1 : 0;
        }
        return static_cast<double>(collisions) / static_cast<double>(trace.ops.size());
    };
    // Thread 0's collision rate clearly exceeds thread 3's (random ties add
    // a 1/32 floor to both).
    EXPECT_GT(collision_rate(program.threads[0]),
              collision_rate(program.threads[3]) + 0.02);
}

TEST(generation, sensitizer_events_present_for_radix_thread0)
{
    const benchmark_profile p = make_profile(benchmark_id::radix, 4);
    const auto program = generate_program_trace(p, 17);
    // Count quiescent (0, 0) adds -- the first half of each event.
    std::size_t prep_count = 0;
    for (const auto& op : program.threads[0].ops) {
        if (op.cls == op_class::int_add && op.operand_a == 0 && op.operand_b == 0) {
            ++prep_count;
        }
    }
    EXPECT_GT(prep_count, 100u);
}

TEST(generation, thread_count_scales)
{
    const benchmark_profile p = make_profile(benchmark_id::radix, 8);
    const auto program = generate_program_trace(p, 5);
    EXPECT_EQ(program.thread_count(), 8u);
}

} // namespace
