// Differential tests pinning the batched characterization hot path
// (chunked interval grain + 64-lane step_batch + bulk histogram insert)
// bit-identical to the scalar per-cell reference walk
// (characterization_config::batched = false), over every real pipe stage,
// serial and pool-parallel, across chunk-sizing worker hints. Identity is
// exact -- EXPECT_EQ on floats/doubles and histogram bin counts -- because
// the batch contract is bit-identity, not tolerance.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/characterization.h"
#include "core/program_artifacts.h"
#include "runtime/thread_pool.h"

namespace {

using namespace synts;

constexpr auto kBenchmark = workload::benchmark_id::radix;
constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kThreads = 2;

void expect_same_characterization(const core::stage_characterization& a,
                                  const core::stage_characterization& b)
{
    EXPECT_EQ(a.stage, b.stage);
    EXPECT_EQ(a.tnom_ps, b.tnom_ps);
    EXPECT_EQ(a.corner_vdd, b.corner_vdd);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        ASSERT_EQ(a.threads[t].size(), b.threads[t].size());
        for (std::size_t k = 0; k < a.threads[t].size(); ++k) {
            const core::interval_characterization& x = a.threads[t][k];
            const core::interval_characterization& y = b.threads[t][k];
            EXPECT_EQ(x.instruction_count, y.instruction_count);
            EXPECT_EQ(x.vector_count, y.vector_count);
            EXPECT_EQ(x.sampling_delays_ps, y.sampling_delays_ps);
            EXPECT_EQ(x.sampling_instr_index, y.sampling_instr_index);
            ASSERT_EQ(x.delay_histograms.size(), y.delay_histograms.size());
            for (std::size_t c = 0; c < x.delay_histograms.size(); ++c) {
                ASSERT_EQ(x.delay_histograms[c].bin_count(),
                          y.delay_histograms[c].bin_count());
                EXPECT_EQ(x.delay_histograms[c].total(), y.delay_histograms[c].total());
                for (std::size_t i = 0; i < x.delay_histograms[c].bin_count(); ++i) {
                    ASSERT_EQ(x.delay_histograms[c].count_at(i),
                              y.delay_histograms[c].count_at(i))
                        << "thread " << t << " interval " << k << " corner " << c
                        << " bin " << i;
                }
            }
        }
    }
}

const core::program_artifacts& shared_artifacts()
{
    static const core::program_artifacts artifacts =
        core::program_characterizer{}.characterize(kBenchmark, kThreads, kSeed);
    return artifacts;
}

class characterization_batch
    : public ::testing::TestWithParam<circuit::pipe_stage> {};

TEST_P(characterization_batch, batched_serial_matches_scalar_reference)
{
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);

    core::characterization_config scalar_cfg;
    scalar_cfg.batched = false;
    const core::characterizer scalar_chars(lib, vm, scalar_cfg);
    const core::characterizer batched_chars(lib, vm, {});

    const auto scalar = scalar_chars.characterize(shared_artifacts(), GetParam());
    const auto batched = batched_chars.characterize(shared_artifacts(), GetParam());
    expect_same_characterization(scalar, batched);
}

TEST_P(characterization_batch, batched_parallel_matches_scalar_reference)
{
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);

    core::characterization_config scalar_cfg;
    scalar_cfg.batched = false;
    const core::characterizer scalar_chars(lib, vm, scalar_cfg);
    const core::characterizer batched_chars(lib, vm, {});

    const auto scalar = scalar_chars.characterize(shared_artifacts(), GetParam());

    runtime::thread_pool pool(3);
    const auto parallel = batched_chars.characterize(
        shared_artifacts(), GetParam(), runtime::make_parallel_for(pool),
        pool.worker_count());
    expect_same_characterization(scalar, parallel);
}

INSTANTIATE_TEST_SUITE_P(stages, characterization_batch,
                         ::testing::Values(circuit::pipe_stage::decode,
                                           circuit::pipe_stage::simple_alu,
                                           circuit::pipe_stage::complex_alu),
                         [](const auto& info) {
                             return std::string(circuit::pipe_stage_name(info.param));
                         });

TEST(characterization_batch, worker_hints_never_change_the_result)
{
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    const core::characterizer chars(lib, vm, {});
    constexpr auto kStage = circuit::pipe_stage::simple_alu;

    // The worker hint sizes chunks only; every partition of the interval
    // axis must chain to the same bits. Hint 1 is the degenerate
    // one-chunk-per-thread serial walk; large hints force many tiny chunks
    // (more warm-up replays, same output).
    const auto reference = chars.characterize(shared_artifacts(), kStage);

    runtime::thread_pool pool(2);
    const auto parallel = runtime::make_parallel_for(pool);
    for (const std::size_t hint : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                   std::size_t{64}}) {
        const auto hinted =
            chars.characterize(shared_artifacts(), kStage, parallel, hint);
        expect_same_characterization(reference, hinted);
    }
}

TEST(characterization_batch, sampling_trace_off_matches_scalar)
{
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    constexpr auto kStage = circuit::pipe_stage::simple_alu;

    core::characterization_config batched_cfg;
    batched_cfg.keep_sampling_trace = false;
    core::characterization_config scalar_cfg = batched_cfg;
    scalar_cfg.batched = false;

    const auto scalar = core::characterizer(lib, vm, scalar_cfg)
                            .characterize(shared_artifacts(), kStage);
    const auto batched = core::characterizer(lib, vm, batched_cfg)
                             .characterize(shared_artifacts(), kStage);
    expect_same_characterization(scalar, batched);
    for (const auto& thread : batched.threads) {
        for (const auto& cell : thread) {
            EXPECT_TRUE(cell.sampling_delays_ps.empty());
            EXPECT_TRUE(cell.sampling_instr_index.empty());
        }
    }
}

} // namespace
