// Tests for the slow-cell health monitor: no flagging below min_samples
// (a cold p99 is noise), the cached k x p99 threshold flags genuine
// outliers and passes typical samples, drop-oldest event retention, the
// write_log line format, monitored_timer's enabled/disabled behavior, and
// -- under TSan -- concurrent is_outlier/log against a hot histogram.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"

namespace {

using namespace synts;

/// A histogram whose p99 is firmly at the `typical` magnitude.
void fill_typical(obs::latency_histogram& hist, std::uint64_t typical,
                  std::size_t n = 1000)
{
    for (std::size_t i = 0; i < n; ++i) {
        hist.record(typical);
    }
}

TEST(obs_health, silent_below_min_samples)
{
    obs::latency_histogram hist;
    obs::counter outliers;
    obs::health_options opts;
    opts.min_samples = 64;
    obs::health_monitor monitor("test.lat_ns", hist, outliers, opts);

    fill_typical(hist, 1000, 63); // one short of min_samples
    // Even an absurd sample is not flagged before the p99 is trustworthy.
    EXPECT_FALSE(monitor.is_outlier(1'000'000'000));
    EXPECT_EQ(monitor.threshold_ns(), 0u);
}

TEST(obs_health, flags_beyond_k_times_p99_and_passes_typical)
{
    obs::latency_histogram hist;
    obs::counter outliers;
    obs::health_options opts;
    opts.k = 4.0;
    opts.min_samples = 64;
    opts.refresh_interval = 1; // re-derive every note: deterministic here
    obs::health_monitor monitor("test.lat_ns", hist, outliers, opts);

    fill_typical(hist, 1000);
    EXPECT_FALSE(monitor.is_outlier(1000));
    EXPECT_FALSE(monitor.is_outlier(2000)); // slow but under 4 x p99
    const std::uint64_t threshold = monitor.threshold_ns();
    // 4 x p99; p99 is the log-bucket lower bound near 1000 (granularity 16).
    EXPECT_GE(threshold, 3900u);
    EXPECT_LE(threshold, 4100u);
    EXPECT_TRUE(monitor.is_outlier(threshold * 10));

    monitor.log(threshold * 10, "stage=simple_alu thread=2 interval=7");
    EXPECT_EQ(monitor.event_count(), 1u);
    EXPECT_EQ(outliers.value(), 1u);

    const std::vector<obs::health_event> events = monitor.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].value_ns, threshold * 10);
    EXPECT_EQ(events[0].threshold_ns, threshold);
    EXPECT_EQ(events[0].detail, "stage=simple_alu thread=2 interval=7");
    EXPECT_GT(events[0].t_ns, 0u);
}

TEST(obs_health, retains_newest_events_and_counts_drops)
{
    obs::latency_histogram hist;
    obs::counter outliers;
    obs::health_options opts;
    opts.capacity = 3;
    obs::health_monitor monitor("test.lat_ns", hist, outliers, opts);

    for (int i = 0; i < 5; ++i) {
        monitor.log(1000 + i, "event" + std::to_string(i));
    }
    EXPECT_EQ(monitor.event_count(), 5u);
    const std::vector<obs::health_event> events = monitor.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].detail, "event2"); // oldest retained
    EXPECT_EQ(events[2].detail, "event4"); // newest

    std::ostringstream log;
    monitor.write_log(log);
    const std::string text = log.str();
    EXPECT_NE(text.find("... 2 older slow-cell events dropped"), std::string::npos)
        << text;
    EXPECT_NE(text.find("SLOW test.lat_ns 1004ns"), std::string::npos) << text;
    EXPECT_NE(text.find("event4"), std::string::npos) << text;
    EXPECT_EQ(text.find("event1"), std::string::npos) << text; // dropped
}

TEST(obs_health, monitored_timer_is_inert_when_telemetry_disabled)
{
    obs::set_enabled(false);
    obs::latency_histogram hist;
    obs::counter outliers;
    obs::health_monitor monitor("test.lat_ns", hist, outliers, {});

    bool detail_built = false;
    {
        const obs::monitored_timer timer(hist, monitor, [&] {
            detail_built = true;
            return std::string("unreachable");
        });
    }
    EXPECT_FALSE(detail_built);
    EXPECT_EQ(hist.total(), 0u);
    EXPECT_EQ(monitor.event_count(), 0u);
}

TEST(obs_health, monitored_timer_records_and_flags_only_outliers)
{
    obs::set_enabled(true);
    obs::latency_histogram hist;
    obs::counter outliers;
    obs::health_options opts;
    opts.refresh_interval = 1;
    obs::health_monitor monitor("test.lat_ns", hist, outliers, opts);

    // Typical population: millisecond-scale timer scopes. The margin
    // matters: the "fast" empty scope below must stay under 4 x p99 even
    // when sanitizer instrumentation (ASan/UBSan CI) inflates it by an
    // order of magnitude, while the 20 ms sleep still lands far beyond.
    fill_typical(hist, 1'000'000);

    int details_built = 0;
    {
        const obs::monitored_timer timer(hist, monitor, [&] {
            ++details_built;
            return std::string("fast scope");
        });
    }
    EXPECT_EQ(hist.total(), 1001u); // recorded...
    EXPECT_EQ(details_built, 0);          // ...but a fast scope is no outlier

    {
        const obs::monitored_timer timer(hist, monitor, [&] {
            ++details_built;
            return std::string("slow scope");
        });
        // Sleep long past 4 x p99 (p99 ~ 1 ms): a genuine outlier.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(details_built, 1);
    EXPECT_EQ(monitor.event_count(), 1u);
    EXPECT_EQ(monitor.events().back().detail, "slow scope");
    obs::set_enabled(false);
}

TEST(obs_health, cell_monitor_is_a_stable_singleton)
{
    obs::health_monitor& a = obs::health_monitor::cell_monitor();
    obs::health_monitor& b = obs::health_monitor::cell_monitor();
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.metric(), "characterize.cell_ns");
}

// TSan target: concurrent is_outlier (relaxed note counter + cached
// threshold refresh walking the histogram) and log (event mutex) against
// live recorders must be race-free.
TEST(obs_health, concurrent_notes_and_logs_are_race_free)
{
    obs::latency_histogram hist;
    obs::counter outliers;
    obs::health_options opts;
    opts.min_samples = 1;
    opts.refresh_interval = 8; // frequent refreshes: hit the racy re-derive
    opts.capacity = 16;
    obs::health_monitor monitor("stress.lat_ns", hist, outliers, opts);

    constexpr int thread_count = 4;
    constexpr int per_thread = 10'000;
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (int t = 0; t < thread_count; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                hist.record(1000);
                if (monitor.is_outlier(1000 + static_cast<std::uint64_t>(i))) {
                    monitor.log(1000 + static_cast<std::uint64_t>(i),
                                "t" + std::to_string(t));
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(hist.total(),
              static_cast<std::uint64_t>(thread_count) * per_thread);
    EXPECT_EQ(monitor.event_count(), outliers.value());
    EXPECT_LE(monitor.events().size(), 16u);
}

} // namespace
