// Tests for arch/cache: geometry checks, hit/miss behavior, LRU.

#include <gtest/gtest.h>

#include "arch/cache.h"

namespace {

using namespace synts::arch;

cache_config small_cache()
{
    cache_config cfg;
    cfg.size_bytes = 1024;
    cfg.line_bytes = 64;
    cfg.ways = 2;
    cfg.hit_latency_cycles = 1;
    cfg.miss_penalty_cycles = 10;
    return cfg;
}

TEST(cache, rejects_bad_geometry)
{
    cache_config cfg = small_cache();
    cfg.line_bytes = 48; // not a power of two
    EXPECT_THROW(cache_sim{cfg}, std::invalid_argument);

    cfg = small_cache();
    cfg.ways = 0;
    EXPECT_THROW(cache_sim{cfg}, std::invalid_argument);

    cfg = small_cache();
    cfg.size_bytes = 1024 + 64; // sets not a power of two
    EXPECT_THROW(cache_sim{cfg}, std::invalid_argument);
}

TEST(cache, first_access_misses_second_hits)
{
    cache_sim cache(small_cache());
    EXPECT_EQ(cache.access(0x1000), 11u);
    EXPECT_EQ(cache.access(0x1000), 1u);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(cache, same_line_different_word_hits)
{
    cache_sim cache(small_cache());
    (void)cache.access(0x1000);
    EXPECT_EQ(cache.access(0x1030), 1u); // same 64B line
}

TEST(cache, lru_evicts_least_recent)
{
    // 1024 B / 64 B / 2 ways = 8 sets. Three tags mapping to set 0:
    // line addresses 0, 8, 16 -> byte addresses 0, 0x200, 0x400.
    cache_sim cache(small_cache());
    (void)cache.access(0x000); // A miss
    (void)cache.access(0x200); // B miss
    (void)cache.access(0x000); // A hit (B is now LRU)
    (void)cache.access(0x400); // C miss, evicts B
    EXPECT_TRUE(cache.would_hit(0x000));
    EXPECT_FALSE(cache.would_hit(0x200));
    EXPECT_TRUE(cache.would_hit(0x400));
}

TEST(cache, would_hit_does_not_mutate)
{
    cache_sim cache(small_cache());
    (void)cache.access(0x000);
    const auto accesses_before = cache.stats().accesses;
    (void)cache.would_hit(0x000);
    (void)cache.would_hit(0xABC0);
    EXPECT_EQ(cache.stats().accesses, accesses_before);
}

TEST(cache, reset_clears_contents_and_stats)
{
    cache_sim cache(small_cache());
    (void)cache.access(0x1000);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.would_hit(0x1000));
}

TEST(cache, working_set_within_capacity_converges_to_hits)
{
    cache_sim cache(small_cache()); // 1 KiB capacity
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t addr = 0; addr < 1024; addr += 64) {
            (void)cache.access(addr);
        }
    }
    // 16 compulsory misses, the rest hits.
    EXPECT_EQ(cache.stats().misses, 16u);
    EXPECT_EQ(cache.stats().accesses, 64u);
}

TEST(cache, streaming_working_set_thrashes)
{
    cache_sim cache(small_cache());
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 64) {
            (void)cache.access(addr);
        }
    }
    EXPECT_GT(cache.stats().miss_rate(), 0.95);
}

TEST(cache, miss_rate_zero_when_idle)
{
    cache_sim cache(small_cache());
    EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.0);
}

} // namespace
