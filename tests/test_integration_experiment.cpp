// End-to-end integration through core/experiment: the paper's headline
// facts must hold in the full pipeline (workload -> arch -> circuit ->
// error models -> optimizers -> policies).

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"

namespace {

using namespace synts;
using core::benchmark_experiment;
using core::policy_kind;

class radix_simple_alu : public ::testing::Test {
protected:
    static void SetUpTestSuite()
    {
        core::experiment_config cfg;
        // gtest static-fixture idiom; TearDownTestSuite deletes it.
        experiment = new benchmark_experiment( // synts-lint: allow(naked-new)
            workload::benchmark_id::radix,
                                              circuit::pipe_stage::simple_alu, cfg);
    }
    static void TearDownTestSuite()
    {
        delete experiment;
        experiment = nullptr;
    }
    static benchmark_experiment* experiment;
};

benchmark_experiment* radix_simple_alu::experiment = nullptr;

TEST_F(radix_simple_alu, dimensions)
{
    EXPECT_EQ(experiment->thread_count(), 4u);
    EXPECT_EQ(experiment->interval_count(), 3u);
    EXPECT_EQ(experiment->space().voltage_count(), 7u);
    EXPECT_EQ(experiment->space().tsr_count(), 6u);
}

TEST_F(radix_simple_alu, thread0_is_timing_speculation_critical)
{
    // Fig. 3.5: thread 0's error probability is several times the calmest
    // thread's, consistently across the speculative range.
    for (std::size_t k = 0; k < experiment->interval_count(); ++k) {
        const double t0 = experiment->error_model(0, k).error_probability(0, 0.64);
        const double t3 = experiment->error_model(3, k).error_probability(0, 0.64);
        ASSERT_GT(t0, 2.5 * t3) << "interval " << k;
        ASSERT_GT(t0, 0.01) << "interval " << k;
    }
}

TEST_F(radix_simple_alu, error_curves_monotone_and_zero_at_nominal)
{
    for (std::size_t t = 0; t < 4; ++t) {
        const auto& model = experiment->error_model(t, 0);
        double previous = 1.0;
        for (double r = 0.60; r <= 1.0; r += 0.02) {
            const double e = model.error_probability(0, r);
            ASSERT_LE(e, previous + 1e-12);
            previous = e;
        }
        EXPECT_LT(model.error_probability(0, 1.0), 1e-4);
    }
}

TEST_F(radix_simple_alu, policy_ordering_at_equal_theta)
{
    const double theta = experiment->equal_weight_theta();
    const auto nominal = experiment->run_policy(policy_kind::nominal, theta);
    const auto no_ts = experiment->run_policy(policy_kind::no_ts, theta);
    const auto per_core = experiment->run_policy(policy_kind::per_core_ts, theta);
    const auto offline = experiment->run_policy(policy_kind::synts_offline, theta);
    const auto online = experiment->run_policy(policy_kind::synts_online, theta);

    auto cost = [theta](const benchmark_experiment::policy_run& run) {
        return run.sum.energy + theta * run.sum.time_ps;
    };

    // SynTS-offline optimizes the weighted cost: nothing beats it.
    EXPECT_LE(cost(offline), cost(nominal) + 1e-9);
    EXPECT_LE(cost(offline), cost(no_ts) + 1e-9);
    EXPECT_LE(cost(offline), cost(per_core) + 1e-9);
    EXPECT_LE(cost(offline), cost(online) + 1e-9);

    // Fig. 6.18 shape: SynTS beats Per-core TS and No-TS on EDP; online
    // pays a bounded overhead over offline.
    EXPECT_LT(offline.sum.edp(), per_core.sum.edp());
    EXPECT_LT(offline.sum.edp(), no_ts.sum.edp());
    EXPECT_LT(online.sum.edp(), per_core.sum.edp());
    EXPECT_GE(online.sum.edp(), offline.sum.edp() * 0.999);
    EXPECT_LT(online.sum.edp(), offline.sum.edp() * 1.35);
}

TEST_F(radix_simple_alu, online_sampling_overhead_visible)
{
    const double theta = experiment->equal_weight_theta();
    const auto online = experiment->run_policy(policy_kind::synts_online, theta);
    for (const auto& interval : online.intervals) {
        EXPECT_GT(interval.sampling_energy, 0.0);
        EXPECT_GT(interval.sampling_time_ps, 0.0);
    }
}

TEST_F(radix_simple_alu, pareto_sweep_brackets_nominal)
{
    const std::vector<double> multipliers = {0.125, 1.0, 8.0};
    const auto points =
        core::pareto_sweep(*experiment, policy_kind::synts_offline, multipliers);
    ASSERT_EQ(points.size(), 3u);
    // Larger theta -> faster, more energy; smaller -> slower, less energy.
    EXPECT_LE(points[2].time, points[0].time + 1e-9);
    EXPECT_LE(points[0].energy, points[2].energy + 1e-9);
    // SynTS never loses to Nominal in weighted cost; at the high-theta end
    // it must be strictly faster than nominal.
    EXPECT_LT(points[2].time, 1.0);
}

TEST(integration_fft, homogeneous_and_error_bound)
{
    core::experiment_config cfg;
    const benchmark_experiment fft(workload::benchmark_id::fft,
                                   circuit::pipe_stage::simple_alu, cfg);
    // Section 5.4: FFT error probabilities are high (no useful speculation)
    // and homogeneous across threads.
    double min_err = 1.0;
    double max_err = 0.0;
    for (std::size_t t = 0; t < fft.thread_count(); ++t) {
        const double e = fft.error_model(t, 0).error_probability(0, 0.928);
        min_err = std::min(min_err, e);
        max_err = std::max(max_err, e);
    }
    EXPECT_GT(min_err, 0.02);          // high errors even at mild speculation
    EXPECT_LT(max_err, 2.0 * min_err); // homogeneous across threads
}

TEST(integration_decode, cholesky_decode_heterogeneity)
{
    core::experiment_config cfg;
    const benchmark_experiment cholesky(workload::benchmark_id::cholesky,
                                        circuit::pipe_stage::decode, cfg);
    const double t0 = cholesky.error_model(0, 0).error_probability(0, 0.64);
    const double t2 = cholesky.error_model(2, 0).error_probability(0, 0.64);
    EXPECT_GT(t0, 2.0 * t2);
    EXPECT_GT(t0, 0.005);

    const double theta = cholesky.equal_weight_theta();
    const auto offline = cholesky.run_policy(policy_kind::synts_offline, theta);
    const auto per_core = cholesky.run_policy(policy_kind::per_core_ts, theta);
    EXPECT_LT(offline.sum.edp(), per_core.sum.edp());
}

TEST(integration_experiment, deterministic_across_runs)
{
    core::experiment_config cfg;
    cfg.seed = 7;
    const benchmark_experiment a(workload::benchmark_id::fmm,
                                 circuit::pipe_stage::simple_alu, cfg);
    const benchmark_experiment b(workload::benchmark_id::fmm,
                                 circuit::pipe_stage::simple_alu, cfg);
    const double theta = a.equal_weight_theta();
    EXPECT_DOUBLE_EQ(theta, b.equal_weight_theta());
    const auto ra = a.run_policy(policy_kind::synts_online, theta);
    const auto rb = b.run_policy(policy_kind::synts_online, theta);
    EXPECT_DOUBLE_EQ(ra.sum.energy, rb.sum.energy);
    EXPECT_DOUBLE_EQ(ra.sum.time_ps, rb.sum.time_ps);
}

} // namespace
