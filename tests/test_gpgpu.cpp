// Tests for gpgpu: VALU semantics, kernels, and the Fig. 5.10 homogeneity
// claim.

#include <gtest/gtest.h>

#include "gpgpu/hamming.h"
#include "gpgpu/kernels.h"
#include "gpgpu/simd.h"

namespace {

using namespace synts::gpgpu;

TEST(valu, op_semantics)
{
    EXPECT_EQ(evaluate_valu_op(valu_op::add, 3, 4), 7u);
    EXPECT_EQ(evaluate_valu_op(valu_op::sub, 3, 4), 0xFFFFFFFFu);
    EXPECT_EQ(evaluate_valu_op(valu_op::mul, 6, 7), 42u);
    EXPECT_EQ(evaluate_valu_op(valu_op::logic_and, 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(evaluate_valu_op(valu_op::logic_or, 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(evaluate_valu_op(valu_op::logic_xor, 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(evaluate_valu_op(valu_op::shift_right, 0x80, 4), 0x8u);
    EXPECT_EQ(evaluate_valu_op(valu_op::shift_right, 1, 33), 0u); // mod-32 shift
    EXPECT_EQ(evaluate_valu_op(valu_op::min_u32, 9, 5), 5u);
    EXPECT_EQ(evaluate_valu_op(valu_op::max_u32, 9, 5), 9u);
    EXPECT_EQ(evaluate_valu_op(valu_op::abs_diff, 3, 10), 7u);
    EXPECT_EQ(evaluate_valu_op(valu_op::abs_diff, 10, 3), 7u);
}

TEST(valu, trace_records_results)
{
    valu_trace trace;
    trace.execute(valu_op::add, 1, 2);
    trace.execute(valu_op::mul, 3, 4);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.instructions[0].result, 3u);
    EXPECT_EQ(trace.instructions[1].result, 12u);
}

TEST(hamming, distance_is_popcount_of_xor)
{
    EXPECT_EQ(hamming_distance(0, 0), 0u);
    EXPECT_EQ(hamming_distance(0xFFFFFFFF, 0), 32u);
    EXPECT_EQ(hamming_distance(0b1010, 0b0101), 4u);
}

TEST(hamming, histogram_counts_consecutive_pairs)
{
    valu_trace trace;
    trace.execute(valu_op::add, 0, 0);      // result 0
    trace.execute(valu_op::add, 0, 1);      // result 1 (distance 1)
    trace.execute(valu_op::add, 0, 1);      // result 1 (distance 0)
    const auto hist = hamming_histogram(trace);
    EXPECT_EQ(hist.total(), 2u);
    EXPECT_EQ(hist.count_at(1), 1u);
    EXPECT_EQ(hist.count_at(0), 1u);
}

TEST(kernels, names_and_count)
{
    EXPECT_EQ(all_gpgpu_kernels().size(), gpgpu_kernel_count);
    EXPECT_EQ(gpgpu_kernel_name(gpgpu_kernel::blackscholes), "BlackScholes");
    EXPECT_EQ(gpgpu_kernel_name(gpgpu_kernel::x264), "X264");
}

TEST(kernels, produce_requested_volume_on_every_valu)
{
    const auto traces = execute_kernel(gpgpu_kernel::matrixmult, 16, 2000, 1);
    ASSERT_EQ(traces.size(), 16u);
    for (const auto& t : traces) {
        EXPECT_GE(t.size(), 2000u);
    }
}

TEST(kernels, deterministic_in_seed)
{
    const auto a = execute_kernel(gpgpu_kernel::fft, 4, 500, 9);
    const auto b = execute_kernel(gpgpu_kernel::fft, 4, 500, 9);
    for (std::size_t v = 0; v < 4; ++v) {
        ASSERT_EQ(a[v].size(), b[v].size());
        for (std::size_t i = 0; i < a[v].size(); i += 37) {
            ASSERT_EQ(a[v].instructions[i].result, b[v].instructions[i].result);
        }
    }
}

TEST(kernels, rejects_zero_valus)
{
    EXPECT_THROW((void)execute_kernel(gpgpu_kernel::fft, 0, 10, 1),
                 std::invalid_argument);
}

class kernel_homogeneity : public ::testing::TestWithParam<gpgpu_kernel> {};

TEST_P(kernel_homogeneity, hamming_histograms_match_across_valus)
{
    // The paper's Fig. 5.10 conclusion: all 16 VALUs show near-identical
    // Hamming-distance histograms -> homogeneous error probabilities ->
    // per-core TS suffices on the GPGPU.
    const auto traces = execute_kernel(GetParam(), hd7970_valu_count, 16000, 42);
    const homogeneity_report report = analyze_homogeneity(traces);
    EXPECT_EQ(report.valu_count, hd7970_valu_count);
    EXPECT_TRUE(report.is_homogeneous(0.08))
        << gpgpu_kernel_name(GetParam()) << " max TVD " << report.max_tvd;
    EXPECT_LT(report.mean_tvd, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    all_kernels, kernel_homogeneity,
    ::testing::Values(gpgpu_kernel::blackscholes, gpgpu_kernel::eigenvalue,
                      gpgpu_kernel::matrixmult, gpgpu_kernel::fft,
                      gpgpu_kernel::binarysearch, gpgpu_kernel::raytrace,
                      gpgpu_kernel::streamcluster, gpgpu_kernel::swaptions,
                      gpgpu_kernel::x264),
    [](const ::testing::TestParamInfo<gpgpu_kernel>& info) {
        return std::string(gpgpu_kernel_name(info.param));
    });

TEST(homogeneity, different_kernels_are_distinguishable)
{
    // Contrast: histograms of *different* kernels differ far more than
    // histograms of the same kernel across VALUs -- the homogeneity metric
    // is not trivially small.
    const auto mm = execute_kernel(gpgpu_kernel::matrixmult, 2, 8000, 1);
    const auto bs = execute_kernel(gpgpu_kernel::binarysearch, 2, 8000, 1);
    std::vector<valu_trace> mixed;
    mixed.push_back(mm[0]);
    mixed.push_back(bs[0]);
    const homogeneity_report cross = analyze_homogeneity(mixed);
    const homogeneity_report within = analyze_homogeneity(mm);
    EXPECT_GT(cross.max_tvd, 3.0 * within.max_tvd);
}

TEST(homogeneity, report_is_symmetric)
{
    const auto traces = execute_kernel(gpgpu_kernel::swaptions, 4, 2000, 3);
    const homogeneity_report report = analyze_homogeneity(traces);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_DOUBLE_EQ(report.pairwise_tvd[i * 4 + j],
                             report.pairwise_tvd[j * 4 + i]);
        }
    }
}

} // namespace
