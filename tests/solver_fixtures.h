// solver_fixtures.h -- randomized SynTS-OPT instances for solver property
// tests and benches.

#pragma once

#include <memory>
#include <vector>

#include "core/error_model.h"
#include "core/solver.h"
#include "core/system_model.h"
#include "util/rng.h"

namespace synts::test {

/// Owns everything a solver_input points to.
struct solver_instance {
    std::unique_ptr<core::config_space> space;
    std::vector<std::unique_ptr<core::synthetic_error_curve>> curves;
    core::solver_input input;
};

/// Builds a random instance with `threads` threads, `voltages` voltage
/// levels and `tsrs` TSR levels. Error curves, workloads and theta are all
/// randomized but valid. Deterministic in `seed`.
inline solver_instance make_random_instance(std::size_t threads, std::size_t voltages,
                                            std::size_t tsrs, std::uint64_t seed)
{
    util::xoshiro256 rng(seed);
    solver_instance inst;

    std::vector<double> volts;
    std::vector<double> tnom;
    double v = 1.0;
    double t = 100.0;
    for (std::size_t j = 0; j < voltages; ++j) {
        volts.push_back(v);
        tnom.push_back(t);
        v -= rng.uniform(0.03, 0.08);
        t *= rng.uniform(1.08, 1.35);
    }
    std::vector<double> tsr_levels;
    double r = 1.0;
    for (std::size_t k = 0; k < tsrs; ++k) {
        tsr_levels.push_back(r);
        r -= rng.uniform(0.04, 0.1);
    }
    std::reverse(tsr_levels.begin(), tsr_levels.end());
    inst.space = std::make_unique<core::config_space>(volts, tsr_levels, tnom);

    inst.input.space = inst.space.get();
    inst.input.params.alpha_switching_cap = 1.0;
    inst.input.params.error_penalty_cycles = 5;

    for (std::size_t i = 0; i < threads; ++i) {
        const double onset = rng.uniform(0.8, 1.0);
        const double scale = rng.uniform(0.005, 0.15);
        const double power = rng.uniform(1.0, 3.0);
        inst.curves.push_back(std::make_unique<core::synthetic_error_curve>(
            onset, 0.5, scale, power));
        inst.input.error_models.push_back(inst.curves.back().get());
        inst.input.workloads.push_back(core::thread_workload{
            1000 + rng.uniform_below(9000), rng.uniform(1.0, 3.0)});
    }

    // theta scaled so energy and time terms are comparable.
    inst.input.theta = core::equal_weight_theta(inst.input) * rng.uniform(0.2, 5.0);
    return inst;
}

} // namespace synts::test
