// Tests for arch/branch_predictor.

#include <gtest/gtest.h>

#include "arch/branch_predictor.h"

namespace {

using namespace synts::arch;

TEST(gshare, rejects_bad_index_bits)
{
    EXPECT_THROW(gshare_predictor(0), std::invalid_argument);
    EXPECT_THROW(gshare_predictor(25), std::invalid_argument);
    EXPECT_NO_THROW(gshare_predictor(12));
}

TEST(gshare, learns_always_taken)
{
    gshare_predictor bp(10);
    int late_mispredicts = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool mispredicted = bp.predict_and_update(0x400000, true);
        if (i >= 1000 && mispredicted) {
            ++late_mispredicts;
        }
    }
    EXPECT_EQ(late_mispredicts, 0);
}

TEST(gshare, learns_alternating_pattern_through_history)
{
    gshare_predictor bp(12);
    int late_mispredicts = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i % 2) == 0;
        const bool mispredicted = bp.predict_and_update(0x400100, taken);
        if (i >= 2000 && mispredicted) {
            ++late_mispredicts;
        }
    }
    EXPECT_LT(late_mispredicts, 20);
}

TEST(gshare, stats_count_branches)
{
    gshare_predictor bp(8);
    for (int i = 0; i < 100; ++i) {
        (void)bp.predict_and_update(0x1000 + 4 * i, i % 3 == 0);
    }
    EXPECT_EQ(bp.stats().branches, 100u);
    EXPECT_LE(bp.stats().mispredictions, 100u);
    EXPECT_GT(bp.stats().misprediction_rate(), 0.0);
}

TEST(gshare, reset_clears_state)
{
    gshare_predictor bp(8);
    for (int i = 0; i < 500; ++i) {
        (void)bp.predict_and_update(0x2000, true);
    }
    bp.reset();
    EXPECT_EQ(bp.stats().branches, 0u);
    // Weakly not-taken after reset: the first taken branch mispredicts.
    EXPECT_TRUE(bp.predict_and_update(0x2000, true));
}

} // namespace
