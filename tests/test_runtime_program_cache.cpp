// Tests for the experiment cache's program tier: one artifact set shared by
// all pipe stages of a benchmark (the trace is generated and the
// architectural profiler run exactly once), keying on workload_digest()
// only, pool-parallel construction bit-identity, and the contract that a
// characterization failure leaves no entry behind on either tier.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.h"
#include "runtime/experiment_cache.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"

namespace {

using namespace synts;
using runtime::experiment_cache;

constexpr auto kBenchmark = workload::benchmark_id::radix;

TEST(runtime_program_cache, three_stages_share_one_program_artifact)
{
    experiment_cache cache;
    const auto decode =
        cache.get_or_create(kBenchmark, circuit::pipe_stage::decode);
    const auto simple =
        cache.get_or_create(kBenchmark, circuit::pipe_stage::simple_alu);
    const auto complex_alu =
        cache.get_or_create(kBenchmark, circuit::pipe_stage::complex_alu);

    // The acceptance pin: characterizing all three pipe stages generated the
    // trace and ran the architectural profiler exactly once.
    EXPECT_EQ(cache.program_miss_count(), 1u);
    EXPECT_EQ(cache.program_hit_count(), 2u);
    EXPECT_EQ(cache.program_size(), 1u);
    EXPECT_EQ(cache.miss_count(), 3u);

    // All three experiments hold the very same artifact instance -- the
    // architectural profiles are shared through it, never duplicated into
    // the per-stage characterizations.
    EXPECT_EQ(decode->artifacts().get(), simple->artifacts().get());
    EXPECT_EQ(decode->artifacts().get(), complex_alu->artifacts().get());
    const auto& from_artifacts = decode->artifacts()->arch_profiles;
    ASSERT_EQ(from_artifacts.size(), decode->thread_count());
    for (const auto& thread : from_artifacts) {
        ASSERT_EQ(thread.size(), decode->interval_count());
    }
}

TEST(runtime_program_cache, program_tier_keys_on_workload_digest_only)
{
    experiment_cache cache;
    const core::experiment_config base;

    core::experiment_config evaluation_only = base;
    evaluation_only.params.leakage_power = 1e-6;
    evaluation_only.sampling.sample_fraction = 0.2;
    ASSERT_NE(evaluation_only.digest(), base.digest());
    ASSERT_EQ(evaluation_only.workload_digest(), base.workload_digest());

    const auto a = cache.get_or_create(kBenchmark, circuit::pipe_stage::decode, base);
    const auto b =
        cache.get_or_create(kBenchmark, circuit::pipe_stage::decode, evaluation_only);

    // Distinct experiments (different stage-tier keys), one shared artifact.
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->artifacts().get(), b->artifacts().get());
    EXPECT_EQ(cache.program_miss_count(), 1u);
    EXPECT_EQ(cache.program_hit_count(), 1u);

    // A workload knob, by contrast, forces fresh artifacts.
    core::experiment_config reseeded = base;
    reseeded.seed = 43;
    ASSERT_NE(reseeded.workload_digest(), base.workload_digest());
    const auto c = cache.get_or_create(kBenchmark, circuit::pipe_stage::decode, reseeded);
    EXPECT_NE(c->artifacts().get(), a->artifacts().get());
    EXPECT_EQ(cache.program_miss_count(), 2u);
    EXPECT_EQ(cache.program_size(), 2u);
}

TEST(runtime_program_cache, get_or_create_program_is_directly_usable)
{
    experiment_cache cache;
    const auto artifacts = cache.get_or_create_program(kBenchmark);
    ASSERT_NE(artifacts, nullptr);
    EXPECT_NO_THROW(artifacts->validate());
    EXPECT_EQ(artifacts->workload, workload::workload_key(kBenchmark));
    EXPECT_EQ(cache.program_miss_count(), 1u);

    // The stage tier reuses a pre-seeded program entry.
    const auto experiment =
        cache.get_or_create(kBenchmark, circuit::pipe_stage::simple_alu);
    EXPECT_EQ(experiment->artifacts().get(), artifacts.get());
    EXPECT_EQ(cache.program_miss_count(), 1u);
    EXPECT_EQ(cache.program_hit_count(), 1u);
}

TEST(runtime_program_cache, pool_parallel_construction_is_bit_identical)
{
    experiment_cache cache;
    runtime::thread_pool pool(4);
    const auto parallel = cache.get_or_create(
        kBenchmark, circuit::pipe_stage::simple_alu, {}, &pool);

    // Forced-serial reference: no pool anywhere in the construction path.
    const core::benchmark_experiment serial(kBenchmark, circuit::pipe_stage::simple_alu,
                                            {});

    const double theta = serial.equal_weight_theta();
    EXPECT_EQ(parallel->equal_weight_theta(), theta);
    for (const core::policy_kind kind : core::all_policies()) {
        const auto a = parallel->run_policy(kind, theta);
        const auto b = serial.run_policy(kind, theta);
        ASSERT_EQ(a.intervals.size(), b.intervals.size());
        EXPECT_EQ(a.sum.energy, b.sum.energy);
        EXPECT_EQ(a.sum.time_ps, b.sum.time_ps);
        for (std::size_t k = 0; k < a.intervals.size(); ++k) {
            EXPECT_EQ(a.intervals[k].energy, b.intervals[k].energy);
            EXPECT_EQ(a.intervals[k].time_ps, b.intervals[k].time_ps);
        }
    }

    // The raw characterization bits agree too, not just the derived runs.
    const auto& ca = parallel->characterization();
    const auto& cb = serial.characterization();
    EXPECT_EQ(ca.tnom_ps, cb.tnom_ps);
    ASSERT_EQ(ca.threads.size(), cb.threads.size());
    for (std::size_t t = 0; t < ca.threads.size(); ++t) {
        ASSERT_EQ(ca.threads[t].size(), cb.threads[t].size());
        for (std::size_t k = 0; k < ca.threads[t].size(); ++k) {
            EXPECT_EQ(ca.threads[t][k].sampling_delays_ps,
                      cb.threads[t][k].sampling_delays_ps);
            EXPECT_EQ(ca.threads[t][k].vector_count, cb.threads[t][k].vector_count);
        }
    }
}

TEST(runtime_program_cache, characterization_failure_drops_entries_on_both_tiers)
{
    experiment_cache cache;
    core::experiment_config broken;
    broken.thread_count = 0; // make_profile rejects this during phase one
    EXPECT_THROW((void)cache.get_or_create(kBenchmark, circuit::pipe_stage::decode,
                                           broken),
                 std::invalid_argument);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.program_size(), 0u);

    // Retry attempts construction again on both tiers (no poisoned entry).
    EXPECT_THROW((void)cache.get_or_create(kBenchmark, circuit::pipe_stage::decode,
                                           broken),
                 std::invalid_argument);
    EXPECT_EQ(cache.miss_count(), 2u);
    EXPECT_EQ(cache.program_miss_count(), 2u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.program_size(), 0u);
}

TEST(runtime_program_cache, scheduler_sweep_shares_artifacts_without_deadlock)
{
    // Regression guard for the self-wait cycle the help-with-anything
    // parallel_for allowed: a sweep worker characterizing inside the cache
    // would lift another pair task off the pool, which then blocked on the
    // program-tier entry the lower stack frame was mid-constructing. With
    // more pairs than workers and the pool threaded into construction, this
    // configuration deadlocked before parallel_for became self-claiming.
    runtime::thread_pool pool(2);
    experiment_cache cache;
    runtime::sweep_spec spec;
    spec.benchmarks = {kBenchmark};
    spec.stages = {circuit::pipe_stage::decode, circuit::pipe_stage::simple_alu,
                   circuit::pipe_stage::complex_alu};
    spec.policies = {core::policy_kind::nominal};

    const runtime::sweep_scheduler scheduler(pool, cache);
    const runtime::sweep_result result = scheduler.run(spec);
    EXPECT_EQ(result.cells.size(), 3u);
    EXPECT_EQ(result.program_cache_misses, 1u);
    EXPECT_EQ(result.program_cache_hits, 2u);
    EXPECT_EQ(result.cache_misses, 3u);
}

TEST(runtime_program_cache, clear_forgets_both_tiers)
{
    experiment_cache cache;
    (void)cache.get_or_create(kBenchmark, circuit::pipe_stage::decode);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.program_size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.program_size(), 0u);
    (void)cache.get_or_create(kBenchmark, circuit::pipe_stage::decode);
    EXPECT_EQ(cache.program_miss_count(), 2u);
}

} // namespace
