// Tests for storage/serialize: bit-exact round trips of every persisted
// type, PR-2-style drift guards (perturbing any serialized field must
// change the encoded bytes -- a field the codec forgets fails here), a
// golden-bytes test pinning the v1 on-disk format, and decode rejection of
// every corruption class (truncation, bit flips, version skew, payload
// kind mismatch, trailing bytes).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "storage/serialize.h"
#include "util/hashing.h"

namespace {

using namespace synts;

// -- fixtures ---------------------------------------------------------------

/// A small, fully hand-specified artifact set: every field non-default so
/// a dropped field cannot hide behind a zero.
core::program_artifacts tiny_artifacts()
{
    core::program_artifacts artifacts;
    artifacts.workload = workload::benchmark_id::radix;
    artifacts.thread_count = 2;
    artifacts.seed = 42;
    artifacts.workload_digest = 0x0123456789ABCDEFull;

    arch::thread_trace thread0;
    thread0.ops.push_back({arch::op_class::int_add, 0xDEADBEEFu, 1, 2, 3, false});
    thread0.barrier_points = {1};
    arch::thread_trace thread1;
    thread1.ops.push_back({arch::op_class::branch, 0x12345678u, 4, 5, 6, true});
    thread1.barrier_points = {1};
    artifacts.trace.threads = {thread0, thread1};

    artifacts.arch_profiles = {
        {{10, 20, 2.0, 0.25, 0.125}},
        {{11, 22, 2.5, 0.5, 0.0625}},
    };
    return artifacts;
}

/// A hand-specified sweep cell exercising every nested struct.
runtime::sweep_cell tiny_cell()
{
    runtime::sweep_cell cell;
    cell.workload = workload::benchmark_id::fmm;
    cell.stage = circuit::pipe_stage::simple_alu;
    cell.policy = core::policy_kind::synts_offline;
    cell.theta_eq = 1.5;
    cell.task_seed = 0xFEEDFACE12345678ull;

    core::interval_outcome outcome;
    outcome.solution.assignments = {{1, 2}, {3, 0}};
    outcome.solution.metrics = {{0.9, 0.8, 700.0, 1e-4, 1000.0, 50.0},
                                {1.0, 1.0, 650.0, 2e-5, 900.0, 60.0}};
    outcome.solution.exec_time_ps = 1000.0;
    outcome.solution.total_energy = 110.0;
    outcome.solution.weighted_cost = 1610.0;
    outcome.sampling_energy = 0.5;
    outcome.sampling_time_ps = 7.0;
    outcome.energy = 110.5;
    outcome.time_ps = 1007.0;

    cell.equal_weight.kind = core::policy_kind::synts_offline;
    cell.equal_weight.intervals = {outcome};
    cell.equal_weight.sum.energy = 110.5;
    cell.equal_weight.sum.time_ps = 1007.0;

    cell.pareto = {{0.75, 0.9, 1.1}, {1.5, 0.8, 1.3}};
    return cell;
}

bool same_artifacts(const core::program_artifacts& a, const core::program_artifacts& b)
{
    if (a.workload != b.workload || a.thread_count != b.thread_count ||
        a.seed != b.seed || a.workload_digest != b.workload_digest ||
        a.trace.thread_count() != b.trace.thread_count() ||
        a.arch_profiles.size() != b.arch_profiles.size()) {
        return false;
    }
    for (std::size_t t = 0; t < a.trace.thread_count(); ++t) {
        const arch::thread_trace& x = a.trace.threads[t];
        const arch::thread_trace& y = b.trace.threads[t];
        if (x.barrier_points != y.barrier_points || x.ops.size() != y.ops.size()) {
            return false;
        }
        for (std::size_t n = 0; n < x.ops.size(); ++n) {
            if (x.ops[n].cls != y.ops[n].cls || x.ops[n].encoding != y.ops[n].encoding ||
                x.ops[n].operand_a != y.ops[n].operand_a ||
                x.ops[n].operand_b != y.ops[n].operand_b ||
                x.ops[n].address != y.ops[n].address ||
                x.ops[n].branch_taken != y.ops[n].branch_taken) {
                return false;
            }
        }
    }
    for (std::size_t t = 0; t < a.arch_profiles.size(); ++t) {
        if (a.arch_profiles[t].size() != b.arch_profiles[t].size()) {
            return false;
        }
        for (std::size_t k = 0; k < a.arch_profiles[t].size(); ++k) {
            const arch::interval_profile& x = a.arch_profiles[t][k];
            const arch::interval_profile& y = b.arch_profiles[t][k];
            if (x.instruction_count != y.instruction_count ||
                x.base_cycles != y.base_cycles || x.cpi_base != y.cpi_base ||
                x.dcache_miss_rate != y.dcache_miss_rate ||
                x.branch_misprediction_rate != y.branch_misprediction_rate) {
                return false;
            }
        }
    }
    return true;
}

bool same_cells(const runtime::sweep_cell& a, const runtime::sweep_cell& b)
{
    if (a.workload != b.workload || a.stage != b.stage || a.policy != b.policy ||
        a.theta_eq != b.theta_eq || a.task_seed != b.task_seed ||
        a.equal_weight.kind != b.equal_weight.kind ||
        a.equal_weight.sum.energy != b.equal_weight.sum.energy ||
        a.equal_weight.sum.time_ps != b.equal_weight.sum.time_ps ||
        a.equal_weight.intervals.size() != b.equal_weight.intervals.size() ||
        a.pareto.size() != b.pareto.size()) {
        return false;
    }
    for (std::size_t k = 0; k < a.equal_weight.intervals.size(); ++k) {
        const core::interval_outcome& x = a.equal_weight.intervals[k];
        const core::interval_outcome& y = b.equal_weight.intervals[k];
        if (x.solution.assignments != y.solution.assignments ||
            x.solution.exec_time_ps != y.solution.exec_time_ps ||
            x.solution.total_energy != y.solution.total_energy ||
            x.solution.weighted_cost != y.solution.weighted_cost ||
            x.sampling_energy != y.sampling_energy ||
            x.sampling_time_ps != y.sampling_time_ps || x.energy != y.energy ||
            x.time_ps != y.time_ps ||
            x.solution.metrics.size() != y.solution.metrics.size()) {
            return false;
        }
        for (std::size_t m = 0; m < x.solution.metrics.size(); ++m) {
            const core::thread_metrics& p = x.solution.metrics[m];
            const core::thread_metrics& q = y.solution.metrics[m];
            if (p.vdd != q.vdd || p.tsr != q.tsr ||
                p.clock_period_ps != q.clock_period_ps ||
                p.error_probability != q.error_probability || p.time_ps != q.time_ps ||
                p.energy != q.energy) {
                return false;
            }
        }
    }
    for (std::size_t i = 0; i < a.pareto.size(); ++i) {
        if (a.pareto[i].theta != b.pareto[i].theta ||
            a.pareto[i].energy != b.pareto[i].energy ||
            a.pareto[i].time != b.pareto[i].time) {
            return false;
        }
    }
    return true;
}

std::string to_hex(std::string_view bytes)
{
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const auto b = static_cast<unsigned char>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

/// Recomputes and patches the trailing checksum (for tests that corrupt a
/// header field but need the frame to get PAST the checksum gate).
std::string with_fixed_checksum(std::string frame)
{
    util::digest_builder h;
    for (std::size_t i = 0; i + 8 < frame.size(); ++i) {
        h.byte(static_cast<std::uint8_t>(frame[i]));
    }
    const std::uint64_t sum = h.digest();
    for (int i = 0; i < 8; ++i) {
        frame[frame.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<char>(static_cast<std::uint8_t>(sum >> (8 * i)));
    }
    return frame;
}

// -- round trips ------------------------------------------------------------

TEST(storage_serialize, tiny_artifacts_round_trip_bit_exact)
{
    const core::program_artifacts original = tiny_artifacts();
    const std::string frame = storage::encode(original);
    const core::program_artifacts decoded = storage::decode_program_artifacts(frame);
    EXPECT_TRUE(same_artifacts(original, decoded));
    // Re-encoding the decoded struct reproduces the frame byte for byte.
    EXPECT_EQ(storage::encode(decoded), frame);
}

TEST(storage_serialize, real_pipeline_artifacts_round_trip_bit_exact)
{
    const auto original = core::make_program_artifacts(workload::benchmark_id::radix);
    const std::string frame = storage::encode(*original);
    const core::program_artifacts decoded = storage::decode_program_artifacts(frame);
    EXPECT_TRUE(same_artifacts(*original, decoded));
    EXPECT_NO_THROW(decoded.validate());
    EXPECT_TRUE(decoded.provenance_matches(workload::benchmark_id::radix,
                                           original->thread_count,
                                           original->workload_digest));
    EXPECT_FALSE(decoded.provenance_matches(workload::benchmark_id::fmm,
                                            original->thread_count,
                                            original->workload_digest));
}

TEST(storage_serialize, tiny_cell_round_trip_bit_exact)
{
    const runtime::sweep_cell original = tiny_cell();
    const std::string frame = storage::encode(original);
    const runtime::sweep_cell decoded = storage::decode_sweep_cell(frame);
    EXPECT_TRUE(same_cells(original, decoded));
    EXPECT_EQ(storage::encode(decoded), frame);
}

TEST(storage_serialize, real_sweep_cell_round_trip_bit_exact)
{
    runtime::sweep_spec spec;
    spec.benchmarks = {workload::benchmark_id::radix};
    spec.stages = {circuit::pipe_stage::simple_alu};
    spec.policies = {core::policy_kind::synts_offline};
    spec.theta_multipliers = {0.5, 1.0};

    runtime::thread_pool pool(1);
    runtime::experiment_cache cache;
    const runtime::sweep_result result =
        runtime::sweep_scheduler(pool, cache).run(spec);
    ASSERT_EQ(result.cells.size(), 1u);

    const runtime::sweep_cell decoded =
        storage::decode_sweep_cell(storage::encode(result.cells[0]));
    EXPECT_TRUE(same_cells(result.cells[0], decoded));
}

// -- drift guards -----------------------------------------------------------
// Perturb exactly one field; the encoded bytes MUST change. A serializer
// that forgets the field (or a reader/writer pair that drops it) fails.

TEST(storage_serialize, every_artifact_field_reaches_the_encoding)
{
    const std::string baseline = storage::encode(tiny_artifacts());

    const std::vector<
        std::pair<const char*, std::function<void(core::program_artifacts&)>>>
        perturbations = {
            {"workload.name", [](auto& a) { a.workload.name += "x"; }},
            {"workload.id", [](auto& a) { a.workload.id ^= 1; }},
            {"thread_count", [](auto& a) { a.thread_count = 3; }},
            {"seed", [](auto& a) { a.seed = 43; }},
            {"workload_digest", [](auto& a) { a.workload_digest ^= 1; }},
            {"op.cls",
             [](auto& a) { a.trace.threads[0].ops[0].cls = arch::op_class::int_sub; }},
            {"op.encoding", [](auto& a) { a.trace.threads[0].ops[0].encoding ^= 1; }},
            {"op.operand_a", [](auto& a) { a.trace.threads[0].ops[0].operand_a ^= 1; }},
            {"op.operand_b", [](auto& a) { a.trace.threads[0].ops[0].operand_b ^= 1; }},
            {"op.address", [](auto& a) { a.trace.threads[0].ops[0].address ^= 1; }},
            {"op.branch_taken",
             [](auto& a) { a.trace.threads[0].ops[0].branch_taken = true; }},
            {"barrier_points",
             [](auto& a) {
                 a.trace.threads[0].ops.push_back(a.trace.threads[0].ops[0]);
                 a.trace.threads[0].barrier_points = {2};
             }},
            {"profile.instruction_count",
             [](auto& a) { a.arch_profiles[0][0].instruction_count ^= 1; }},
            {"profile.base_cycles",
             [](auto& a) { a.arch_profiles[0][0].base_cycles ^= 1; }},
            {"profile.cpi_base", [](auto& a) { a.arch_profiles[0][0].cpi_base = 3.0; }},
            {"profile.dcache_miss_rate",
             [](auto& a) { a.arch_profiles[0][0].dcache_miss_rate = 0.375; }},
            {"profile.branch_misprediction_rate",
             [](auto& a) { a.arch_profiles[0][0].branch_misprediction_rate = 0.75; }},
        };

    for (const auto& [name, perturb] : perturbations) {
        core::program_artifacts perturbed = tiny_artifacts();
        perturb(perturbed);
        EXPECT_NE(storage::encode(perturbed), baseline)
            << "field not serialized: " << name;
    }
}

TEST(storage_serialize, every_cell_field_reaches_the_encoding)
{
    const std::string baseline = storage::encode(tiny_cell());

    const std::vector<std::pair<const char*, std::function<void(runtime::sweep_cell&)>>>
        perturbations = {
            {"workload.name", [](auto& c) { c.workload.name += "x"; }},
            {"workload.id", [](auto& c) { c.workload.id ^= 1; }},
            {"stage", [](auto& c) { c.stage = circuit::pipe_stage::decode; }},
            {"policy", [](auto& c) { c.policy = core::policy_kind::no_ts; }},
            {"theta_eq", [](auto& c) { c.theta_eq = 2.0; }},
            {"task_seed", [](auto& c) { c.task_seed ^= 1; }},
            {"equal_weight.kind",
             [](auto& c) { c.equal_weight.kind = core::policy_kind::nominal; }},
            {"sum.energy", [](auto& c) { c.equal_weight.sum.energy = 1.0; }},
            {"sum.time_ps", [](auto& c) { c.equal_weight.sum.time_ps = 1.0; }},
            {"assignment.voltage_index",
             [](auto& c) {
                 c.equal_weight.intervals[0].solution.assignments[0].voltage_index = 7;
             }},
            {"assignment.tsr_index",
             [](auto& c) {
                 c.equal_weight.intervals[0].solution.assignments[0].tsr_index = 7;
             }},
            {"metrics.vdd",
             [](auto& c) { c.equal_weight.intervals[0].solution.metrics[0].vdd = 1.1; }},
            {"metrics.tsr",
             [](auto& c) { c.equal_weight.intervals[0].solution.metrics[0].tsr = 0.7; }},
            {"metrics.clock_period_ps",
             [](auto& c) {
                 c.equal_weight.intervals[0].solution.metrics[0].clock_period_ps = 1.0;
             }},
            {"metrics.error_probability",
             [](auto& c) {
                 c.equal_weight.intervals[0].solution.metrics[0].error_probability = 0.5;
             }},
            {"metrics.time_ps",
             [](auto& c) {
                 c.equal_weight.intervals[0].solution.metrics[0].time_ps = 1.0;
             }},
            {"metrics.energy",
             [](auto& c) {
                 c.equal_weight.intervals[0].solution.metrics[0].energy = 1.0;
             }},
            {"solution.exec_time_ps",
             [](auto& c) { c.equal_weight.intervals[0].solution.exec_time_ps = 1.0; }},
            {"solution.total_energy",
             [](auto& c) { c.equal_weight.intervals[0].solution.total_energy = 1.0; }},
            {"solution.weighted_cost",
             [](auto& c) { c.equal_weight.intervals[0].solution.weighted_cost = 1.0; }},
            {"outcome.sampling_energy",
             [](auto& c) { c.equal_weight.intervals[0].sampling_energy = 1.0; }},
            {"outcome.sampling_time_ps",
             [](auto& c) { c.equal_weight.intervals[0].sampling_time_ps = 1.0; }},
            {"outcome.energy",
             [](auto& c) { c.equal_weight.intervals[0].energy = 1.0; }},
            {"outcome.time_ps",
             [](auto& c) { c.equal_weight.intervals[0].time_ps = 1.0; }},
            {"pareto.theta", [](auto& c) { c.pareto[0].theta = 9.0; }},
            {"pareto.energy", [](auto& c) { c.pareto[0].energy = 9.0; }},
            {"pareto.time", [](auto& c) { c.pareto[0].time = 9.0; }},
        };

    for (const auto& [name, perturb] : perturbations) {
        runtime::sweep_cell perturbed = tiny_cell();
        perturb(perturbed);
        EXPECT_NE(storage::encode(perturbed), baseline)
            << "field not serialized: " << name;
    }
}

// -- golden bytes -----------------------------------------------------------

/// Re-encodes tiny_artifacts() as a v1 frame: the pre-registry layout with
/// a benchmark_id ordinal (u8) where v2 stores the workload key. Used to
/// prove v1 store frames of the built-in ten still decode after the bump.
std::string encode_v1_artifacts(const core::program_artifacts& artifacts,
                                std::uint8_t benchmark_ordinal)
{
    storage::binary_writer out;
    for (const char c : storage::frame_magic) {
        out.u8(static_cast<std::uint8_t>(c));
    }
    out.u32(1); // v1
    out.u32(static_cast<std::uint32_t>(storage::payload_kind::program_artifacts));
    out.u8(benchmark_ordinal);
    out.size(artifacts.thread_count);
    out.u64(artifacts.seed);
    out.u64(artifacts.workload_digest);
    storage::write(out, artifacts.trace);
    out.size(artifacts.arch_profiles.size());
    for (const auto& thread : artifacts.arch_profiles) {
        out.size(thread.size());
        for (const auto& interval : thread) {
            storage::write(out, interval);
        }
    }
    std::string frame = out.take();
    frame.append(8, '\0');
    return with_fixed_checksum(std::move(frame));
}

/// The exact 269-byte v1 frame of tiny_artifacts(), as hex: header
/// ("SYNTSTOR", version 1, kind 1), the payload field by field in little
/// endian (benchmark as a u8 ordinal), and the trailing FNV-1a checksum.
/// These bytes were produced by the PR-3 v1 encoder and are frozen here:
/// they are what a pre-registry store actually contains.
constexpr std::string_view kGoldenV1FrameHex =
    "53594e5453544f520100000001000000"
    "0102000000000000002a000000000000"
    "00efcdab896745230102000000000000"
    "00010000000000000000efbeadde0100"
    "00000000000002000000000000000300"
    "00000000000000010000000000000001"
    "00000000000000010000000000000006"
    "78563412040000000000000005000000"
    "00000000060000000000000001010000"
    "00000000000100000000000000020000"
    "000000000001000000000000000a0000"
    "00000000001400000000000000000000"
    "0000000040000000000000d03f000000"
    "000000c03f01000000000000000b0000"
    "00000000001600000000000000000000"
    "0000000440000000000000e03f000000"
    "000000b03f3dea736deece9031";

/// The exact v2 frame of tiny_artifacts(): as v1, but the benchmark
/// ordinal is replaced by the workload key (u64 registry digest + length-
/// prefixed name "Radix") and the header says version 2.
constexpr std::string_view kGoldenV2FrameHex =
    "53594e5453544f520200000001000000"
    "d04842bc646e0c42050000000000000052616469780200000000000000"
    "2a00000000000000efcdab8967452301"
    "0200000000000000010000000000000000efbeadde0100000000000000"
    "02000000000000000300000000000000"
    "00010000000000000001000000000000"
    "00010000000000000006785634120400"
    "00000000000005000000000000000600"
    "00000000000001010000000000000001"
    "00000000000000020000000000000001"
    "000000000000000a0000000000000014"
    "00000000000000000000000000004000"
    "0000000000d03f000000000000c03f01"
    "000000000000000b0000000000000016"
    "00000000000000000000000000044000"
    "0000000000e03f000000000000b03f"
    "9c4c2e8fdb345eca";

std::string from_hex(std::string_view hex)
{
    const auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') {
            return c - '0';
        }
        return 10 + (c - 'a');
    };
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
        out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
    }
    return out;
}

TEST(storage_serialize, golden_v1_frame_still_decodes_after_version_bump)
{
    // The frozen PR-3 bytes: a v1 store frame of tiny_artifacts() with
    // benchmark_id::radix as a u8 ordinal. The v2 decoder must keep
    // accepting it, mapping the ordinal onto the built-in registry key.
    const core::program_artifacts decoded =
        storage::decode_program_artifacts(from_hex(kGoldenV1FrameHex));
    EXPECT_TRUE(same_artifacts(decoded, tiny_artifacts()));
    EXPECT_EQ(decoded.workload, workload::builtin_key(workload::benchmark_id::radix));
}

TEST(storage_serialize, v1_frames_of_every_builtin_benchmark_decode)
{
    for (const workload::benchmark_id id : workload::all_benchmarks()) {
        const std::string frame =
            encode_v1_artifacts(tiny_artifacts(), static_cast<std::uint8_t>(id));
        const core::program_artifacts decoded = storage::decode_program_artifacts(frame);
        EXPECT_EQ(decoded.workload, workload::builtin_key(id));
        EXPECT_EQ(decoded.seed, tiny_artifacts().seed);
    }
    // The golden hex and the re-encoder agree byte for byte (so the
    // re-encoder really is the v1 layout, not an approximation).
    EXPECT_EQ(to_hex(encode_v1_artifacts(
                  tiny_artifacts(),
                  static_cast<std::uint8_t>(workload::benchmark_id::radix))),
              std::string(kGoldenV1FrameHex));
}

TEST(storage_serialize, v1_out_of_range_benchmark_ordinal_is_rejected)
{
    const std::string frame = encode_v1_artifacts(
        tiny_artifacts(), static_cast<std::uint8_t>(workload::benchmark_count));
    EXPECT_THROW((void)storage::decode_program_artifacts(frame),
                 storage::serialize_error);
}

TEST(storage_serialize, golden_frame_pins_v2_format)
{
    // The exact v2 frame of tiny_artifacts(). If this test fails, the
    // on-disk format changed: bump storage::format_version (old store
    // files become invisible, not misread) and re-pin these bytes.
    ASSERT_EQ(storage::format_version, 2u);
    const std::string frame = storage::encode(tiny_artifacts());

    // Header: magic + version + payload kind, all fixed.
    ASSERT_GE(frame.size(), 16u);
    EXPECT_EQ(frame.substr(0, 8), "SYNTSTOR");
    EXPECT_EQ(to_hex(frame.substr(8, 4)), "02000000");  // version 2, LE
    EXPECT_EQ(to_hex(frame.substr(12, 4)), "01000000"); // kind: program_artifacts

    EXPECT_EQ(to_hex(frame), std::string(kGoldenV2FrameHex));
}

// -- corruption rejection ---------------------------------------------------

TEST(storage_serialize, truncation_is_rejected_at_every_length)
{
    const std::string frame = storage::encode(tiny_artifacts());
    for (std::size_t len = 0; len < frame.size(); ++len) {
        EXPECT_THROW((void)storage::decode_program_artifacts(frame.substr(0, len)),
                     storage::serialize_error)
            << "accepted a frame truncated to " << len << " bytes";
    }
}

TEST(storage_serialize, any_single_bit_flip_is_rejected)
{
    const std::string frame = storage::encode(tiny_artifacts());
    // Every byte, one bit each (bit index varies to cover all positions).
    for (std::size_t i = 0; i < frame.size(); ++i) {
        std::string corrupt = frame;
        corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << (i % 8)));
        EXPECT_THROW((void)storage::decode_program_artifacts(corrupt),
                     storage::serialize_error)
            << "accepted a bit flip in byte " << i;
    }
}

TEST(storage_serialize, wrong_version_is_rejected_even_with_valid_checksum)
{
    // Future versions are rejected...
    std::string future = storage::encode(tiny_artifacts());
    future[8] = static_cast<char>(storage::format_version + 1); // LE low byte
    EXPECT_THROW((void)storage::decode_program_artifacts(with_fixed_checksum(future)),
                 storage::serialize_error);
    // ...and so is anything below min_format_version (0 was never valid).
    std::string ancient = storage::encode(tiny_artifacts());
    ancient[8] = 0;
    EXPECT_THROW((void)storage::decode_program_artifacts(with_fixed_checksum(ancient)),
                 storage::serialize_error);
}

TEST(storage_serialize, wrong_magic_is_rejected_even_with_valid_checksum)
{
    std::string frame = storage::encode(tiny_artifacts());
    frame[0] = 'X';
    EXPECT_THROW((void)storage::decode_program_artifacts(with_fixed_checksum(frame)),
                 storage::serialize_error);
}

TEST(storage_serialize, payload_kind_mismatch_is_rejected)
{
    // A perfectly valid artifact frame is not a sweep cell, and vice versa.
    EXPECT_THROW((void)storage::decode_sweep_cell(storage::encode(tiny_artifacts())),
                 storage::serialize_error);
    EXPECT_THROW((void)storage::decode_program_artifacts(storage::encode(tiny_cell())),
                 storage::serialize_error);
}

TEST(storage_serialize, trailing_bytes_are_rejected)
{
    std::string frame = storage::encode(tiny_artifacts());
    frame.insert(frame.size() - 8, 1, '\0'); // extra payload byte
    EXPECT_THROW((void)storage::decode_program_artifacts(with_fixed_checksum(frame)),
                 storage::serialize_error);
}

TEST(storage_serialize, hostile_length_fields_cannot_force_huge_allocations)
{
    // Claim 2^60 ops in a 100-byte v1 frame; the decoder must reject from
    // the length bound, not die attempting the allocation.
    storage::binary_writer out;
    for (const char c : storage::frame_magic) {
        out.u8(static_cast<std::uint8_t>(c));
    }
    out.u32(1); // v1 framing (u8 benchmark ordinal below)
    out.u32(static_cast<std::uint32_t>(storage::payload_kind::program_artifacts));
    out.u8(0);          // benchmark
    out.size(2);        // thread_count
    out.u64(42);        // seed
    out.u64(0);         // workload digest
    out.size(1ull << 60); // thread count of the trace: hostile
    std::string frame = out.take();
    frame.append(8, '\0');
    EXPECT_THROW((void)storage::decode_program_artifacts(with_fixed_checksum(frame)),
                 storage::serialize_error);
}

TEST(storage_serialize, hostile_workload_name_length_is_rejected)
{
    // A v2 frame whose workload-name length claims 2^60 bytes: the string
    // read must reject against the remaining frame size, never allocate.
    storage::binary_writer out;
    for (const char c : storage::frame_magic) {
        out.u8(static_cast<std::uint8_t>(c));
    }
    out.u32(storage::format_version);
    out.u32(static_cast<std::uint32_t>(storage::payload_kind::program_artifacts));
    out.u64(0x1234);      // workload id
    out.size(1ull << 60); // workload name length: hostile
    std::string frame = out.take();
    frame.append(8, '\0');
    EXPECT_THROW((void)storage::decode_program_artifacts(with_fixed_checksum(frame)),
                 storage::serialize_error);
}

// -- shard manifests ---------------------------------------------------------

TEST(storage_serialize, shard_manifest_round_trips)
{
    const runtime::shard_manifest manifest{0x1234567890ABCDEFull, 4, 2, 42};
    const runtime::shard_manifest decoded =
        storage::decode_shard_manifest(storage::encode(manifest));
    EXPECT_EQ(decoded, manifest);

    // The layout-frame sentinel (shard_index == shard_count) is legal.
    const runtime::shard_manifest layout{7, 3, 3, 12};
    EXPECT_EQ(storage::decode_shard_manifest(storage::encode(layout)), layout);
}

TEST(storage_serialize, shard_manifest_rejects_malformed_and_corrupt_frames)
{
    // Field-domain violations are caught even in a checksum-valid frame.
    EXPECT_THROW((void)storage::decode_shard_manifest(
                     storage::encode(runtime::shard_manifest{1, 0, 0, 0})),
                 storage::serialize_error);
    EXPECT_THROW((void)storage::decode_shard_manifest(
                     storage::encode(runtime::shard_manifest{1, 2, 4, 0})),
                 storage::serialize_error);

    const std::string frame =
        storage::encode(runtime::shard_manifest{0xFEEDFACE, 8, 5, 64});
    // Truncation at every length.
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
        EXPECT_THROW((void)storage::decode_shard_manifest(frame.substr(0, keep)),
                     storage::serialize_error)
            << keep;
    }
    // Any single-bit flip breaks the checksum (or a checked field).
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string corrupt = frame;
            corrupt[byte] = static_cast<char>(
                static_cast<unsigned char>(corrupt[byte]) ^ (1u << bit));
            EXPECT_THROW((void)storage::decode_shard_manifest(corrupt),
                         storage::serialize_error)
                << "byte " << byte << " bit " << bit;
        }
    }
    // A manifest frame is not a sweep cell (payload-kind check).
    EXPECT_THROW((void)storage::decode_sweep_cell(frame), storage::serialize_error);
}

// -- shard progress ----------------------------------------------------------

TEST(storage_serialize, shard_progress_round_trips)
{
    const runtime::shard_progress progress{0xDEADBEEFCAFEF00Dull, 4, 2, 120, 37};
    EXPECT_EQ(storage::decode_shard_progress(storage::encode(progress)), progress);

    // Unsharded runs publish as shard 0 of 1; done == owned is legal.
    const runtime::shard_progress done{9, 1, 0, 15, 15};
    EXPECT_EQ(storage::decode_shard_progress(storage::encode(done)), done);
}

TEST(storage_serialize, shard_progress_rejects_malformed_and_corrupt_frames)
{
    // Field-domain violations caught even in a checksum-valid frame:
    // zero shards, index out of range (progress frames have no layout
    // sentinel, so index == count is also invalid), done > owned.
    EXPECT_THROW((void)storage::decode_shard_progress(
                     storage::encode(runtime::shard_progress{1, 0, 0, 0, 0})),
                 storage::serialize_error);
    EXPECT_THROW((void)storage::decode_shard_progress(
                     storage::encode(runtime::shard_progress{1, 2, 2, 4, 0})),
                 storage::serialize_error);
    EXPECT_THROW((void)storage::decode_shard_progress(
                     storage::encode(runtime::shard_progress{1, 2, 0, 4, 5})),
                 storage::serialize_error);

    const std::string frame =
        storage::encode(runtime::shard_progress{0xFEEDFACE, 8, 5, 64, 13});
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
        EXPECT_THROW((void)storage::decode_shard_progress(frame.substr(0, keep)),
                     storage::serialize_error)
            << keep;
    }
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string corrupt = frame;
            corrupt[byte] = static_cast<char>(
                static_cast<unsigned char>(corrupt[byte]) ^ (1u << bit));
            EXPECT_THROW((void)storage::decode_shard_progress(corrupt),
                         storage::serialize_error)
                << "byte " << byte << " bit " << bit;
        }
    }
    // Kind checks cut both ways: a progress frame is not a manifest and
    // vice versa.
    EXPECT_THROW((void)storage::decode_shard_manifest(frame), storage::serialize_error);
    EXPECT_THROW((void)storage::decode_shard_progress(storage::encode(
                     runtime::shard_manifest{1, 2, 0, 4})),
                 storage::serialize_error);
}

// Every shard_progress field must feed the encoded bytes (drift guard,
// mirroring the perturbation tests above).
TEST(storage_serialize, shard_progress_field_perturbations_change_bytes)
{
    const runtime::shard_progress base{100, 4, 2, 50, 20};
    const std::string baseline = storage::encode(base);
    const auto expect_differs = [&](const runtime::shard_progress& changed) {
        EXPECT_NE(storage::encode(changed), baseline);
    };
    expect_differs({101, 4, 2, 50, 20});
    expect_differs({100, 5, 2, 50, 20});
    expect_differs({100, 4, 3, 50, 20});
    expect_differs({100, 4, 2, 51, 20});
    expect_differs({100, 4, 2, 50, 21});
}

} // namespace
