// Tests for circuit/voltage_model and ring_oscillator (Table 5.1).

#include <gtest/gtest.h>

#include "circuit/ring_oscillator.h"
#include "circuit/voltage_model.h"

namespace {

using namespace synts::circuit;

TEST(voltage_table, matches_paper_table_5_1)
{
    const auto vdd = paper_voltage_levels();
    const auto tnom = paper_tnom_multipliers();
    ASSERT_EQ(vdd.size(), voltage_level_count);
    ASSERT_EQ(tnom.size(), voltage_level_count);
    EXPECT_DOUBLE_EQ(vdd[0], 1.0);
    EXPECT_DOUBLE_EQ(tnom[0], 1.0);
    EXPECT_DOUBLE_EQ(vdd[3], 0.8);
    EXPECT_DOUBLE_EQ(tnom[3], 1.39);
    EXPECT_DOUBLE_EQ(vdd[6], 0.65);
    EXPECT_DOUBLE_EQ(tnom[6], 2.63);
}

TEST(voltage_table, interpolation_hits_table_points)
{
    const voltage_model vm(0.04);
    const auto vdd = paper_voltage_levels();
    const auto tnom = paper_tnom_multipliers();
    for (std::size_t i = 0; i < vdd.size(); ++i) {
        EXPECT_NEAR(vm.tnom_multiplier(vdd[i]), tnom[i], 1e-12);
    }
}

TEST(voltage_table, interpolation_monotone_decreasing_in_v)
{
    const voltage_model vm(0.04);
    double previous = vm.tnom_multiplier(1.05);
    for (double v = 1.0; v >= 0.60; v -= 0.01) {
        const double m = vm.tnom_multiplier(v);
        ASSERT_GE(m, previous - 1e-12) << "v=" << v;
        previous = m;
    }
}

TEST(voltage_table, clamps_outside_range)
{
    const voltage_model vm(0.04);
    EXPECT_DOUBLE_EQ(vm.tnom_multiplier(1.2), 1.0);
    EXPECT_DOUBLE_EQ(vm.tnom_multiplier(0.5), 2.63);
}

TEST(alpha_power, fit_is_reasonable)
{
    const alpha_power_fit fit = fit_alpha_power_law();
    EXPECT_GT(fit.vth, 0.1);
    EXPECT_LT(fit.vth, 0.64);
    EXPECT_GT(fit.alpha, 0.5);
    EXPECT_LT(fit.alpha, 3.0);
    // The published table has a near-threshold kink; the law cannot be
    // exact, but the RMS residual must stay small.
    EXPECT_LT(fit.rms_error, 0.25);
    // Normalization: scale(1.0) == 1.
    EXPECT_NEAR(alpha_power_scale(fit, 1.0), 1.0, 1e-12);
}

TEST(alpha_power, scale_increases_as_v_drops)
{
    const alpha_power_fit fit = fit_alpha_power_law();
    double previous = 1.0;
    for (double v = 0.95; v >= 0.65; v -= 0.05) {
        const double s = alpha_power_scale(fit, v);
        ASSERT_GT(s, previous);
        previous = s;
    }
}

TEST(cell_scale, nominal_voltage_is_identity)
{
    const voltage_model vm(0.04);
    for (std::size_t k = 0; k < cell_kind_count; ++k) {
        EXPECT_NEAR(vm.cell_scale(static_cast<cell_kind>(k), 1.0), 1.0, 1e-12);
    }
}

TEST(cell_scale, class_spread_bounded_and_zero_mean)
{
    const voltage_model vm(0.04);
    double mean = 0.0;
    for (std::size_t k = 0; k < cell_kind_count; ++k) {
        const double s = vm.class_spread_of(static_cast<cell_kind>(k));
        EXPECT_LE(std::abs(s), 0.08);
        mean += s;
    }
    EXPECT_NEAR(mean / static_cast<double>(cell_kind_count), 0.0, 1e-12);
}

TEST(cell_scale, uniform_mode_has_no_spread)
{
    const voltage_model vm(0.0);
    EXPECT_TRUE(vm.is_uniform());
    for (std::size_t k = 0; k < cell_kind_count; ++k) {
        EXPECT_DOUBLE_EQ(vm.cell_scale(static_cast<cell_kind>(k), 0.72),
                         vm.tnom_multiplier(0.72));
    }
}

TEST(cell_scale, deterministic_across_instances)
{
    const voltage_model a(0.04);
    const voltage_model b(0.04);
    for (std::size_t k = 0; k < cell_kind_count; ++k) {
        EXPECT_DOUBLE_EQ(a.class_spread_of(static_cast<cell_kind>(k)),
                         b.class_spread_of(static_cast<cell_kind>(k)));
    }
}

TEST(ring_oscillator, rejects_bad_stage_counts)
{
    const alpha_power_fit fit = fit_alpha_power_law();
    EXPECT_THROW(ring_oscillator(2, fit), std::invalid_argument);
    EXPECT_THROW(ring_oscillator(4, fit), std::invalid_argument);
    EXPECT_NO_THROW(ring_oscillator(31, fit));
}

TEST(ring_oscillator, regenerates_table_5_1_shape)
{
    const ring_oscillator ring(31, fit_alpha_power_law());
    const auto points = ring.sweep(paper_voltage_levels());
    const auto expected = paper_tnom_multipliers();
    ASSERT_EQ(points.size(), expected.size());
    EXPECT_NEAR(points[0].normalized_period, 1.0, 1e-12);
    for (std::size_t i = 0; i < points.size(); ++i) {
        // Within 15% of the published multiplier at every level.
        EXPECT_NEAR(points[i].normalized_period, expected[i], 0.15 * expected[i])
            << "vdd=" << points[i].vdd;
    }
    // Monotone increase as voltage drops.
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].normalized_period, points[i - 1].normalized_period);
    }
}

TEST(ring_oscillator, period_scales_with_stage_count)
{
    const alpha_power_fit fit = fit_alpha_power_law();
    const ring_oscillator small(15, fit);
    const ring_oscillator large(31, fit);
    EXPECT_NEAR(large.period_ps(1.0) / small.period_ps(1.0), 31.0 / 15.0, 1e-9);
}

} // namespace
