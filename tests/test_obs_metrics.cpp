// Tests for obs/metrics: histogram bucket math and percentile extraction on
// exactly-known distributions, concurrent counter/histogram updates (exact
// totals once writers join -- the TSan CI job runs this suite), registry
// interning and snapshot determinism, and the three render formats.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/trace.h"
#include "core/characterization.h"
#include "core/program_artifacts.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace synts;
using obs::latency_histogram;

// -- bucket math -------------------------------------------------------------

TEST(obs_metrics, bucket_index_is_exact_below_sub_bucket_count)
{
    for (std::uint64_t v = 0; v < latency_histogram::sub_bucket_count; ++v) {
        EXPECT_EQ(latency_histogram::bucket_index(v), v);
        EXPECT_EQ(latency_histogram::bucket_lower_bound(v), v);
    }
}

TEST(obs_metrics, bucket_lower_bound_inverts_bucket_index)
{
    // Every bucket's lower bound must map back to that bucket, and the
    // value just below it to an earlier bucket (spot-checked across the
    // whole range, including the top octave).
    const std::uint64_t probes[] = {
        32, 33, 63, 64, 65, 100, 127, 128, 1000, 4096, 65535, 1ull << 20,
        (1ull << 40) + 12345, 1ull << 63, ~0ull};
    for (const std::uint64_t v : probes) {
        const std::size_t index = latency_histogram::bucket_index(v);
        ASSERT_LT(index, latency_histogram::bucket_count) << v;
        const std::uint64_t lower = latency_histogram::bucket_lower_bound(index);
        EXPECT_LE(lower, v) << v;
        EXPECT_EQ(latency_histogram::bucket_index(lower), index) << v;
        if (lower > 0) {
            EXPECT_LT(latency_histogram::bucket_index(lower - 1), index) << v;
        }
    }
}

TEST(obs_metrics, bucket_index_preserves_order)
{
    std::uint64_t previous = 0;
    for (std::uint64_t v = 1; v < (1ull << 20); v = v * 3 / 2 + 1) {
        const std::size_t index = latency_histogram::bucket_index(v);
        EXPECT_GE(index, previous) << v;
        previous = index;
    }
}

// -- percentiles -------------------------------------------------------------

TEST(obs_metrics, percentiles_are_exact_on_small_known_distribution)
{
    // {1..10} lives entirely in the exact region, so nearest-rank
    // percentiles are the textbook order statistics.
    latency_histogram hist;
    for (std::uint64_t v = 1; v <= 10; ++v) {
        hist.record(v);
    }
    EXPECT_EQ(hist.total(), 10u);
    EXPECT_EQ(hist.percentile(0.50), 5u);  // ceil(0.5 * 10) = 5th smallest
    EXPECT_EQ(hist.percentile(0.95), 10u); // ceil(9.5) = 10th
    EXPECT_EQ(hist.percentile(0.99), 10u);
    EXPECT_EQ(hist.percentile(0.10), 1u);
    EXPECT_EQ(hist.percentile(0.0), 1u); // clamped to the 1st sample
    EXPECT_EQ(hist.max_value(), 10u);
}

TEST(obs_metrics, percentile_returns_bucket_lower_bound_above_exact_region)
{
    latency_histogram hist;
    hist.record(1000);
    // 1000 = 0b1111101000: octave 9, shift 4, lower bound 62 << 4 = 992.
    const std::uint64_t lower =
        latency_histogram::bucket_lower_bound(latency_histogram::bucket_index(1000));
    EXPECT_EQ(lower, 992u);
    EXPECT_EQ(hist.percentile(0.5), lower);
    EXPECT_EQ(hist.max_value(), lower);
}

TEST(obs_metrics, percentile_of_empty_histogram_is_zero)
{
    const latency_histogram hist;
    EXPECT_EQ(hist.total(), 0u);
    EXPECT_EQ(hist.percentile(0.5), 0u);
    EXPECT_EQ(hist.percentile(1.0), 0u);
    EXPECT_EQ(hist.max_value(), 0u);
}

TEST(obs_metrics, percentile_skewed_distribution)
{
    // 99 fast samples at 1, one slow at 16: p50/p95 must not see the
    // outlier, p99 (rank ceil(0.99*100) = 99) still lands on 1, p100 = 16.
    latency_histogram hist;
    for (int i = 0; i < 99; ++i) {
        hist.record(1);
    }
    hist.record(16);
    EXPECT_EQ(hist.percentile(0.50), 1u);
    EXPECT_EQ(hist.percentile(0.95), 1u);
    EXPECT_EQ(hist.percentile(0.99), 1u);
    EXPECT_EQ(hist.percentile(1.0), 16u);
}

TEST(obs_metrics, histogram_reset_clears_counts)
{
    latency_histogram hist;
    hist.record(7);
    hist.record(7);
    ASSERT_EQ(hist.total(), 2u);
    hist.reset();
    EXPECT_EQ(hist.total(), 0u);
    EXPECT_EQ(hist.count_at(7), 0u);
    EXPECT_EQ(hist.percentile(0.5), 0u);
}

// -- concurrency -------------------------------------------------------------

TEST(obs_metrics, concurrent_counter_adds_are_exact)
{
    obs::counter counter;
    constexpr int thread_count = 8;
    constexpr std::uint64_t adds_per_thread = 20'000;
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (int t = 0; t < thread_count; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < adds_per_thread; ++i) {
                counter.add(1);
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_EQ(counter.value(), thread_count * adds_per_thread);
}

TEST(obs_metrics, concurrent_histogram_records_are_exact)
{
    latency_histogram hist;
    constexpr int thread_count = 8;
    constexpr std::uint64_t records_per_thread = 5'000;
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (int t = 0; t < thread_count; ++t) {
        threads.emplace_back([&hist, t] {
            // Every thread records the same multiset {1..16}, so per-bucket
            // counts are exactly predictable too.
            for (std::uint64_t i = 0; i < records_per_thread; ++i) {
                hist.record(1 + ((i + static_cast<std::uint64_t>(t)) % 16));
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_EQ(hist.total(), thread_count * records_per_thread);
    std::uint64_t bucket_sum = 0;
    for (std::uint64_t v = 1; v <= 16; ++v) {
        bucket_sum += hist.count_at(latency_histogram::bucket_index(v));
    }
    EXPECT_EQ(bucket_sum, thread_count * records_per_thread);
}

TEST(obs_metrics, concurrent_registry_interning_returns_one_instrument)
{
    obs::metrics_registry registry;
    constexpr int thread_count = 8;
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (int t = 0; t < thread_count; ++t) {
        threads.emplace_back([&registry] {
            for (int i = 0; i < 1'000; ++i) {
                registry.counter_at("race.counter").add(1);
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_EQ(registry.counter_at("race.counter").value(), thread_count * 1'000u);
    EXPECT_EQ(registry.snapshot().size(), 1u);
}

// -- registry + rendering ----------------------------------------------------

TEST(obs_metrics, registry_interns_by_name_and_snapshots_sorted)
{
    obs::metrics_registry registry;
    obs::counter& a = registry.counter_at("z.last");
    EXPECT_EQ(&a, &registry.counter_at("z.last"));
    registry.counter_at("a.first").add(3);
    registry.gauge_at("m.gauge").set(-7);
    registry.histogram_at("m.hist").record(5);
    a.add(1);

    const std::vector<obs::metric_sample> samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[0].name, "a.first");
    EXPECT_EQ(samples[0].count, 3u);
    EXPECT_EQ(samples[1].name, "m.gauge");
    EXPECT_EQ(samples[1].level, -7);
    EXPECT_EQ(samples[2].name, "m.hist");
    EXPECT_EQ(samples[2].count, 1u);
    EXPECT_EQ(samples[2].p50, 5u);
    EXPECT_EQ(samples[3].name, "z.last");
    EXPECT_EQ(samples[3].count, 1u);

    registry.reset();
    EXPECT_EQ(registry.counter_at("a.first").value(), 0u);
    EXPECT_EQ(registry.gauge_at("m.gauge").value(), 0);
    EXPECT_EQ(registry.histogram_at("m.hist").total(), 0u);
    // Handles survive reset.
    EXPECT_EQ(&a, &registry.counter_at("z.last"));
}

TEST(obs_metrics, render_formats_cover_all_instrument_kinds)
{
    obs::metrics_registry registry;
    registry.counter_at("c").add(2);
    registry.gauge_at("g").set(4);
    for (std::uint64_t v = 1; v <= 10; ++v) {
        registry.histogram_at("h").record(v);
    }
    const std::vector<obs::metric_sample> samples = registry.snapshot();

    const std::string csv = obs::render_metrics(samples, obs::metrics_format::csv);
    EXPECT_NE(csv.find("name,type,value,count,p50_ns,p95_ns,p99_ns,max_ns"),
              std::string::npos);
    EXPECT_NE(csv.find("c,counter,2"), std::string::npos);
    EXPECT_NE(csv.find("g,gauge,4"), std::string::npos);
    EXPECT_NE(csv.find("h,histogram,"), std::string::npos);

    const std::string json = obs::render_metrics(samples, obs::metrics_format::json);
    EXPECT_NE(json.find("\"c\": {\"type\": \"counter\", \"value\": 2}"),
              std::string::npos);
    EXPECT_NE(json.find("\"g\": {\"type\": \"gauge\", \"value\": 4}"),
              std::string::npos);
    EXPECT_NE(json.find("\"h\": {\"type\": \"histogram\", \"count\": 10, "
                        "\"p50_ns\": 5"),
              std::string::npos);

    const std::string table = obs::render_metrics(samples, obs::metrics_format::table);
    EXPECT_NE(table.find('c'), std::string::npos);
    EXPECT_NE(table.find("histogram"), std::string::npos);
}

TEST(obs_metrics, scoped_timer_records_nothing_when_disabled)
{
    const bool was_enabled = obs::enabled();
    obs::set_enabled(false);
    latency_histogram hist;
    {
        const obs::scoped_timer timer(hist);
    }
    EXPECT_EQ(hist.total(), 0u);

    obs::set_enabled(true);
    {
        const obs::scoped_timer timer(hist);
    }
    EXPECT_EQ(hist.total(), 1u);
    obs::set_enabled(was_enabled);
}

// -- characterization instrumentation ----------------------------------------
// The characterizer registers characterize.cells / characterize.vectors
// counters and a characterize.cell_ns latency histogram in the global
// registry, and wraps each stage pass in a characterize.stage:<name> span.
// These tests run a tiny hand-built trace through the pipeline and assert
// the instrument deltas exactly.

namespace charz {

/// One thread, two intervals: interval 0 has 2 SimpleALU ops + 1 nop,
/// interval 1 has 1 SimpleALU op + 1 multiply (ComplexALU). Against the
/// SimpleALU stage that is 2 cells and 3 driving vectors.
arch::program_trace tiny_trace()
{
    arch::thread_trace t;
    t.ops.push_back({arch::op_class::int_add, 0x11, 3, 4, 0, false});
    t.ops.push_back({arch::op_class::nop, 0, 0, 0, 0, false});
    t.ops.push_back({arch::op_class::int_sub, 0x22, 9, 5, 0, false});
    t.ops.push_back({arch::op_class::int_logic, 0x33, 6, 7, 0, false});
    t.ops.push_back({arch::op_class::int_mul, 0x44, 2, 8, 0, false});
    t.barrier_points = {3, 5};
    arch::program_trace trace;
    trace.threads.push_back(std::move(t));
    return trace;
}

} // namespace charz

TEST(obs_metrics, characterization_bumps_cell_and_vector_counters)
{
    obs::metrics_registry& registry = obs::metrics_registry::global();
    obs::counter& cells = registry.counter_at("characterize.cells");
    obs::counter& vectors = registry.counter_at("characterize.vectors");
    const std::uint64_t cells_before = cells.value();
    const std::uint64_t vectors_before = vectors.value();

    const auto artifacts =
        core::program_characterizer{}.characterize_trace(charz::tiny_trace());
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    const core::characterizer chars(lib, vm, {});
    const auto result =
        chars.characterize(artifacts, circuit::pipe_stage::simple_alu);

    // 1 thread x 2 intervals = 2 cells; int_add + int_sub + int_logic = 3
    // driving vectors (the nop and the multiply never reach the SimpleALU).
    EXPECT_EQ(cells.value() - cells_before, 2u);
    EXPECT_EQ(vectors.value() - vectors_before, 3u);
    ASSERT_EQ(result.threads.size(), 1u);
    ASSERT_EQ(result.threads[0].size(), 2u);
    EXPECT_EQ(result.threads[0][0].vector_count, 2u);
    EXPECT_EQ(result.threads[0][1].vector_count, 1u);

    // The scalar reference path must report the same counts.
    core::characterization_config scalar_cfg;
    scalar_cfg.batched = false;
    const std::uint64_t cells_mid = cells.value();
    const std::uint64_t vectors_mid = vectors.value();
    (void)core::characterizer(lib, vm, scalar_cfg)
        .characterize(artifacts, circuit::pipe_stage::simple_alu);
    EXPECT_EQ(cells.value() - cells_mid, 2u);
    EXPECT_EQ(vectors.value() - vectors_mid, 3u);
}

TEST(obs_metrics, characterization_cell_latency_histogram_gated_on_enabled)
{
    obs::metrics_registry& registry = obs::metrics_registry::global();
    obs::latency_histogram& cell_ns = registry.histogram_at("characterize.cell_ns");

    const auto artifacts =
        core::program_characterizer{}.characterize_trace(charz::tiny_trace());
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    const core::characterizer chars(lib, vm, {});

    const bool was_enabled = obs::enabled();
    obs::set_enabled(false);
    const std::uint64_t disabled_before = cell_ns.total();
    (void)chars.characterize(artifacts, circuit::pipe_stage::simple_alu);
    EXPECT_EQ(cell_ns.total(), disabled_before) << "disabled telemetry recorded";

    obs::set_enabled(true);
    const std::uint64_t enabled_before = cell_ns.total();
    (void)chars.characterize(artifacts, circuit::pipe_stage::simple_alu);
    // One scoped_timer per (thread, interval) cell.
    EXPECT_EQ(cell_ns.total() - enabled_before, 2u);
    obs::set_enabled(was_enabled);
}

TEST(obs_metrics, characterization_emits_stage_span)
{
    obs::trace_recorder& recorder = obs::trace_recorder::global();
    const bool was_enabled = recorder.enabled();
    recorder.set_enabled(true);
    const std::size_t events_before = recorder.event_count();

    const auto artifacts =
        core::program_characterizer{}.characterize_trace(charz::tiny_trace());
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    (void)core::characterizer(lib, vm, {})
        .characterize(artifacts, circuit::pipe_stage::complex_alu);
    recorder.set_enabled(was_enabled);

    bool found = false;
    for (const auto& event : recorder.events()) {
        found = found || event.name == "characterize.stage:ComplexALU";
    }
    EXPECT_TRUE(found) << "no characterize.stage span recorded (events before: "
                       << events_before << ")";
}

} // namespace
