// Tests for the minimal JSON reader behind bench_diff: the six value
// kinds, strict rejection (trailing garbage, leading zeros, lone
// surrogates, raw control characters, over-deep nesting) with byte
// offsets, \u escape decoding incl. surrogate pairs, first-wins duplicate
// keys, and a round-trip over a real BENCH-shaped document.

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace {

using synts::util::json_error;
using synts::util::json_value;

TEST(util_json, parses_all_scalar_kinds)
{
    EXPECT_TRUE(json_value::parse("null").is_null());
    EXPECT_TRUE(json_value::parse("true").as_bool());
    EXPECT_FALSE(json_value::parse("false").as_bool());
    EXPECT_DOUBLE_EQ(json_value::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(json_value::parse("-0.5").as_number(), -0.5);
    EXPECT_DOUBLE_EQ(json_value::parse("1.25e2").as_number(), 125.0);
    EXPECT_DOUBLE_EQ(json_value::parse("2E-2").as_number(), 0.02);
    EXPECT_EQ(json_value::parse("\"hi\"").as_string(), "hi");
    EXPECT_EQ(json_value::parse("  \"ws\"  ").as_string(), "ws");
}

TEST(util_json, parses_containers_and_preserves_order)
{
    const json_value doc = json_value::parse(
        R"({"z": [1, 2, 3], "a": {"nested": true}, "empty_a": [], "empty_o": {}})");
    ASSERT_TRUE(doc.is_object());
    const auto& members = doc.as_object();
    ASSERT_EQ(members.size(), 4u);
    // Emission order survives (no sorting).
    EXPECT_EQ(members[0].first, "z");
    EXPECT_EQ(members[1].first, "a");

    const json_value* z = doc.find("z");
    ASSERT_NE(z, nullptr);
    ASSERT_EQ(z->as_array().size(), 3u);
    EXPECT_DOUBLE_EQ(z->as_array()[1].as_number(), 2.0);

    EXPECT_TRUE(doc.find("a")->find("nested")->as_bool());
    EXPECT_TRUE(doc.find("empty_a")->as_array().empty());
    EXPECT_TRUE(doc.find("empty_o")->as_object().empty());
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_EQ(z->find("anything"), nullptr); // find on a non-object
}

TEST(util_json, decodes_escapes_including_surrogate_pairs)
{
    EXPECT_EQ(json_value::parse(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(),
              "a\"b\\c/d\b\f\n\r\t");
    EXPECT_EQ(json_value::parse(R"("\u0041")").as_string(), "A");
    EXPECT_EQ(json_value::parse(R"("\u00e9")").as_string(), "\xC3\xA9");   // e-acute
    EXPECT_EQ(json_value::parse(R"("\u20ac")").as_string(), "\xE2\x82\xAC"); // euro
    // U+1D11E (musical G clef): a surrogate pair into 4-byte UTF-8.
    EXPECT_EQ(json_value::parse(R"("\ud834\udd1e")").as_string(),
              "\xF0\x9D\x84\x9E");
    // Raw UTF-8 bytes (>= 0x20) pass through untouched.
    EXPECT_EQ(json_value::parse("\"\xC3\xA9\"").as_string(), "\xC3\xA9");
}

TEST(util_json, duplicate_keys_keep_the_first)
{
    const json_value doc = json_value::parse(R"({"k": 1, "k": 2})");
    ASSERT_EQ(doc.as_object().size(), 1u);
    EXPECT_DOUBLE_EQ(doc.find("k")->as_number(), 1.0);
}

TEST(util_json, rejects_malformed_documents_with_offsets)
{
    const auto offset_of = [](const std::string& text) -> std::size_t {
        try {
            (void)json_value::parse(text);
        } catch (const json_error& error) {
            return error.offset();
        }
        ADD_FAILURE() << "parsed: " << text;
        return static_cast<std::size_t>(-1);
    };

    EXPECT_THROW((void)json_value::parse(""), json_error);
    EXPECT_THROW((void)json_value::parse("tru"), json_error);
    EXPECT_THROW((void)json_value::parse("nul"), json_error);
    EXPECT_THROW((void)json_value::parse("{\"a\": 1,}"), json_error);
    EXPECT_THROW((void)json_value::parse("[1, 2"), json_error);
    EXPECT_THROW((void)json_value::parse("\"unterminated"), json_error);
    EXPECT_THROW((void)json_value::parse("\"bad\\q\""), json_error);
    EXPECT_THROW((void)json_value::parse("\"raw\ntab\""), json_error);
    EXPECT_THROW((void)json_value::parse("007"), json_error);
    EXPECT_THROW((void)json_value::parse("-"), json_error);
    EXPECT_THROW((void)json_value::parse("1."), json_error);
    EXPECT_THROW((void)json_value::parse("1e"), json_error);
    EXPECT_THROW((void)json_value::parse(R"("\ud834")"), json_error);  // lone high
    EXPECT_THROW((void)json_value::parse(R"("\udd1e")"), json_error);  // lone low
    EXPECT_THROW((void)json_value::parse(R"("\u12g4")"), json_error);

    // Trailing garbage points past the valid prefix.
    EXPECT_EQ(offset_of("42 junk"), 3u);
}

TEST(util_json, caps_nesting_depth_instead_of_overflowing)
{
    std::string deep;
    for (int i = 0; i < 100; ++i) {
        deep += '[';
    }
    EXPECT_THROW((void)json_value::parse(deep), json_error);

    std::string fine = "1";
    for (int i = 0; i < 32; ++i) {
        fine = "[" + fine + "]";
    }
    EXPECT_NO_THROW((void)json_value::parse(fine));
}

TEST(util_json, typed_accessors_throw_on_kind_mismatch)
{
    const json_value number = json_value::parse("3.5");
    EXPECT_THROW((void)number.as_string(), json_error);
    EXPECT_THROW((void)number.as_array(), json_error);
    EXPECT_THROW((void)json_value::parse("\"s\"").as_number(), json_error);
}

TEST(util_json, reads_a_bench_shaped_document)
{
    const json_value doc = json_value::parse(R"({
      "generated_unix": 1754600000,
      "hardware_threads": 8,
      "benches": [
        {"name": "bench_micro_solver", "seconds": 0.123, "exit_code": 0},
        {"name": "bench_micro_circuit", "seconds": 1.5, "exit_code": 0}
      ],
      "pass": true,
      "meta": {"schema_version": 1, "git_describe": "v0-8-gabc1234"}
    })");
    const json_value* benches = doc.find("benches");
    ASSERT_NE(benches, nullptr);
    ASSERT_EQ(benches->as_array().size(), 2u);
    EXPECT_EQ(benches->as_array()[0].find("name")->as_string(),
              "bench_micro_solver");
    EXPECT_DOUBLE_EQ(benches->as_array()[1].find("seconds")->as_number(), 1.5);
    EXPECT_TRUE(doc.find("pass")->as_bool());
    EXPECT_EQ(doc.find("meta")->find("git_describe")->as_string(), "v0-8-gabc1234");
}

} // namespace
