// Tests for the fleet stall watchdog behind `synts_runner --watch`: rates
// and ETAs differenced between explicit-timestamp ticks, the mtime-based
// STALLED verdict (frames aged by rewriting file mtimes -- no sleeping),
// finished-shard semantics (done == owned never stalls, with or without a
// completion manifest), and the console rendering. Frames are fabricated
// directly in the store's manifest bucket; no sweeps run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "runtime/fleet_watch.h"
#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"

namespace {

using namespace synts;
namespace fs = std::filesystem;

struct temp_dir {
    fs::path path;

    temp_dir()
    {
        static std::atomic<std::uint64_t> counter{0};
        path = fs::temp_directory_path() /
               ("synts_fleet_watch_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }
    ~temp_dir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

constexpr std::uint64_t digest = 4242;

void publish_layout(const storage::artifact_store& store, std::uint32_t shard_count,
                    std::uint64_t total_cells)
{
    ASSERT_TRUE(store.store(
        storage::manifest_bucket, runtime::shard_layout_digest(digest),
        storage::encode(
            runtime::shard_manifest{digest, shard_count, shard_count, total_cells})));
}

void publish_progress(const storage::artifact_store& store, std::uint32_t shard_count,
                      std::uint32_t index, std::uint64_t owned, std::uint64_t done)
{
    ASSERT_TRUE(store.store(
        storage::manifest_bucket,
        runtime::shard_progress_digest(digest, shard_count, index),
        storage::encode(runtime::shard_progress{digest, shard_count, index, owned, done})));
}

/// Rewrites the progress frame's mtime `age_s` seconds into the past --
/// the watch reads frame age from the filesystem, so tests inject
/// staleness without waiting for it.
void age_progress_frame(const storage::artifact_store& store,
                        std::uint32_t shard_count, std::uint32_t index, double age_s)
{
    const fs::path path = store.entry_path(
        storage::manifest_bucket,
        runtime::shard_progress_digest(digest, shard_count, index));
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::milliseconds(
                                      static_cast<std::int64_t>(age_s * 1000.0)));
}

TEST(runtime_fleet_watch, empty_store_is_neither_complete_nor_stalled)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);
    runtime::fleet_watch watch(store);
    const runtime::watch_report report = watch.tick(1'000'000'000ull);
    EXPECT_TRUE(report.sweeps.empty());
    EXPECT_FALSE(report.all_complete);
    EXPECT_FALSE(report.any_stalled);
    EXPECT_EQ(runtime::render_watch_report(report), "no sweeps recorded\n");
}

TEST(runtime_fleet_watch, rates_and_etas_derive_between_ticks)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);
    publish_layout(store, 2, 16);
    publish_progress(store, 2, 0, 10, 2);

    runtime::fleet_watch watch(store);

    // First sighting of a shard: no previous observation, no rate.
    const runtime::watch_report first = watch.tick(1'000'000'000ull);
    ASSERT_EQ(first.sweeps.size(), 1u);
    ASSERT_EQ(first.sweeps[0].shards.size(), 2u);
    EXPECT_FALSE(first.sweeps[0].shards[0].cells_per_s.has_value());
    EXPECT_FALSE(first.sweeps[0].shards[0].stalled);
    EXPECT_FALSE(first.sweeps[0].complete);
    EXPECT_FALSE(first.all_complete);

    // 4 more cells over the next 2 seconds: 2 cells/s, eta (10-6)/2 = 2 s.
    publish_progress(store, 2, 0, 10, 6);
    const runtime::watch_report second = watch.tick(3'000'000'000ull);
    const runtime::watch_shard& shard0 = second.sweeps[0].shards[0];
    ASSERT_TRUE(shard0.cells_per_s.has_value());
    EXPECT_DOUBLE_EQ(*shard0.cells_per_s, 2.0);
    ASSERT_TRUE(shard0.eta_s.has_value());
    EXPECT_DOUBLE_EQ(*shard0.eta_s, 2.0);
    EXPECT_FALSE(shard0.stalled);

    // Sweep aggregates: the one rated shard carries the fleet numbers, and
    // the layout keeps the owned total honest (16 cells, not shard 0's 10).
    EXPECT_EQ(second.sweeps[0].total_done, 6u);
    EXPECT_EQ(second.sweeps[0].total_owned, 16u);
    ASSERT_TRUE(second.sweeps[0].cells_per_s.has_value());
    EXPECT_DOUBLE_EQ(*second.sweeps[0].cells_per_s, 2.0);
    ASSERT_TRUE(second.sweeps[0].eta_s.has_value());
    EXPECT_DOUBLE_EQ(*second.sweeps[0].eta_s, 2.0);

    const std::string text = runtime::render_watch_report(second);
    EXPECT_NE(text.find("sweep 4242: 2 shards, 16 cells"), std::string::npos) << text;
    EXPECT_NE(text.find("shard 0/2: 6/10 (60.0%) 2.0 cells/s eta 2s"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("shard 1/2: no progress recorded"), std::string::npos) << text;
    EXPECT_NE(text.find("total: 6/16 (37.5%) 2.0 cells/s eta 2s"), std::string::npos)
        << text;
}

TEST(runtime_fleet_watch, stale_incomplete_frame_is_stalled)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);
    publish_layout(store, 1, 10);
    publish_progress(store, 1, 0, 10, 3);
    age_progress_frame(store, 1, 0, 30.0); // well past the 10 s default

    runtime::fleet_watch watch(store);
    const runtime::watch_report report = watch.tick(1'000'000'000ull);
    ASSERT_EQ(report.sweeps.size(), 1u);
    EXPECT_TRUE(report.sweeps[0].shards[0].stalled);
    EXPECT_TRUE(report.any_stalled);
    EXPECT_FALSE(report.all_complete);

    const std::string text = runtime::render_watch_report(report);
    EXPECT_NE(text.find("STALLED (age "), std::string::npos) << text;
}

TEST(runtime_fleet_watch, stall_threshold_is_configurable)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);
    publish_layout(store, 1, 10);
    publish_progress(store, 1, 0, 10, 3);
    age_progress_frame(store, 1, 0, 5.0);

    // 5 s old: fresh under the 10 s default, stalled under a 2 s budget.
    runtime::fleet_watch lenient(store);
    EXPECT_FALSE(lenient.tick(1).any_stalled);

    runtime::watch_config tight;
    tight.stall_ns = 2'000'000'000ull;
    runtime::fleet_watch strict(store, tight);
    EXPECT_TRUE(strict.tick(1).any_stalled);
}

TEST(runtime_fleet_watch, finished_shards_never_stall)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);

    // An unsharded checkpoint run: progress frame only (done == owned),
    // no completion manifest, frame long past the stall threshold.
    publish_layout(store, 1, 6);
    publish_progress(store, 1, 0, 6, 6);
    age_progress_frame(store, 1, 0, 60.0);

    runtime::fleet_watch watch(store);
    const runtime::watch_report report = watch.tick(1'000'000'000ull);
    ASSERT_EQ(report.sweeps.size(), 1u);
    EXPECT_FALSE(report.sweeps[0].shards[0].stalled);
    EXPECT_FALSE(report.any_stalled);
    // done >= owned counts as complete even without the attestation.
    EXPECT_TRUE(report.sweeps[0].complete);
    EXPECT_TRUE(report.all_complete);
}

TEST(runtime_fleet_watch, completion_manifest_wins_over_stale_progress)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);
    publish_layout(store, 1, 6);
    publish_progress(store, 1, 0, 6, 4); // stale mid-run frame...
    age_progress_frame(store, 1, 0, 60.0);
    ASSERT_TRUE(store.store(
        storage::manifest_bucket, runtime::shard_manifest_digest(digest, 1, 0),
        storage::encode(runtime::shard_manifest{digest, 1, 0, 6}))); // ...but attested

    runtime::fleet_watch watch(store);
    const runtime::watch_report report = watch.tick(1'000'000'000ull);
    ASSERT_EQ(report.sweeps.size(), 1u);
    EXPECT_TRUE(report.sweeps[0].shards[0].status.complete);
    EXPECT_FALSE(report.sweeps[0].shards[0].stalled);
    EXPECT_TRUE(report.all_complete);
    EXPECT_FALSE(report.any_stalled);

    const std::string text = runtime::render_watch_report(report);
    EXPECT_NE(text.find("shard 0/1: 6/6 (100.0%) complete"), std::string::npos)
        << text;
}

TEST(runtime_fleet_watch, collect_store_status_exposes_frame_age)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);
    publish_layout(store, 2, 8);
    publish_progress(store, 2, 0, 4, 1);
    age_progress_frame(store, 2, 0, 20.0);

    const std::vector<runtime::sweep_status> sweeps =
        runtime::collect_store_status(store);
    ASSERT_EQ(sweeps.size(), 1u);
    ASSERT_EQ(sweeps[0].shards.size(), 2u);
    ASSERT_TRUE(sweeps[0].shards[0].frame_age_ns.has_value());
    // Age is a real filesystem timestamp difference: at least the injected
    // 20 s, and not absurdly larger.
    EXPECT_GE(*sweeps[0].shards[0].frame_age_ns, 20'000'000'000ull);
    EXPECT_LT(*sweeps[0].shards[0].frame_age_ns, 120'000'000'000ull);
    // The unreported shard has no frame to age.
    EXPECT_FALSE(sweeps[0].shards[1].frame_age_ns.has_value());
}

} // namespace
