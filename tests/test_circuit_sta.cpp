// Tests for circuit/sta: arrival propagation, critical path recovery, and
// the STA >= dynamic-delay guarantee.

#include <gtest/gtest.h>

#include "circuit/netlist_builder.h"
#include "circuit/sta.h"
#include "helpers.h"
#include "util/rng.h"

namespace {

using namespace synts::circuit;
using synts::test::netlist_evaluator;
using synts::util::xoshiro256;

TEST(sta, inverter_chain_sums_delays)
{
    netlist nl("chain");
    net_id n = nl.add_input("a");
    for (int i = 0; i < 10; ++i) {
        n = nl.add_gate1(cell_kind::inv, n);
    }
    nl.mark_output("y", n);

    const cell_library lib = cell_library::standard_22nm();
    const static_timing_analyzer sta(nl);
    const timing_report report = sta.analyze_nominal(lib);

    // Every inverter drives exactly one load.
    const double expected = 10.0 * lib.delay_ps(cell_kind::inv, 1);
    EXPECT_NEAR(report.critical_delay_ps, expected, 1e-9);
    EXPECT_EQ(report.critical_path.size(), 10u);
}

TEST(sta, critical_path_is_connected)
{
    const stage_netlist stage = build_simple_alu();
    const cell_library lib = cell_library::standard_22nm();
    const static_timing_analyzer sta(stage.nl);
    const timing_report report = sta.analyze_nominal(lib);

    ASSERT_FALSE(report.critical_path.empty());
    const auto gates = stage.nl.gates();
    for (std::size_t i = 1; i < report.critical_path.size(); ++i) {
        const gate& prev = gates[report.critical_path[i - 1]];
        const gate& cur = gates[report.critical_path[i]];
        bool connected = false;
        for (std::size_t p = 0; p < cur.input_count; ++p) {
            connected = connected || cur.inputs[p] == prev.output;
        }
        ASSERT_TRUE(connected) << "critical path breaks at hop " << i;
    }
    // The path ends at the critical output's driver.
    EXPECT_EQ(gates[report.critical_path.back()].output, report.critical_output);
}

TEST(sta, arrivals_monotone_along_paths)
{
    const stage_netlist stage = build_decode_stage();
    const cell_library lib = cell_library::standard_22nm();
    const static_timing_analyzer sta(stage.nl);
    const timing_report report = sta.analyze_nominal(lib);

    const auto gates = stage.nl.gates();
    for (const auto& g : gates) {
        for (std::size_t p = 0; p < g.input_count; ++p) {
            ASSERT_LT(report.arrival_ps[g.inputs[p]], report.arrival_ps[g.output]);
        }
    }
}

TEST(sta, rejects_wrong_delay_table_size)
{
    netlist nl("t");
    const net_id a = nl.add_input("a");
    (void)nl.add_gate1(cell_kind::inv, a);
    const static_timing_analyzer sta(nl);
    const std::vector<double> wrong(3, 1.0);
    EXPECT_THROW((void)sta.analyze(wrong), std::invalid_argument);
}

class sta_dynamic_bound : public ::testing::TestWithParam<pipe_stage> {};

TEST_P(sta_dynamic_bound, dynamic_delay_never_exceeds_sta)
{
    const stage_netlist stage = build_stage(GetParam());
    netlist_evaluator eval(stage.nl);
    const double critical = eval.nominal_period_ps();

    xoshiro256 rng(99);
    const std::size_t width = stage.nl.input_count();
    std::vector<bool> noise(width);
    auto bits = std::make_unique<bool[]>(width);
    for (int round = 0; round < 500; ++round) {
        for (std::size_t i = 0; i < width; ++i) {
            bits[i] = rng.bernoulli(0.5);
        }
        const double delay = eval.step(std::span<const bool>(bits.get(), width));
        ASSERT_LE(delay, critical + 1e-9);
        ASSERT_GE(delay, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(stages, sta_dynamic_bound,
                         ::testing::Values(pipe_stage::decode, pipe_stage::simple_alu,
                                           pipe_stage::complex_alu),
                         [](const ::testing::TestParamInfo<pipe_stage>& info) {
                             return std::string(pipe_stage_name(info.param));
                         });

TEST(sta, voltage_scaling_increases_critical_path)
{
    const stage_netlist stage = build_simple_alu();
    const cell_library lib = cell_library::standard_22nm();
    const voltage_model vm(0.04);
    const static_timing_analyzer sta(stage.nl);
    const auto nominal = sta.nominal_gate_delays(lib);

    std::vector<double> scaled(nominal.size());
    double previous = 0.0;
    for (const double vdd : paper_voltage_levels()) {
        vm.scale_gate_delays(stage.nl.gates(), nominal, scaled, vdd);
        const double critical = sta.analyze(scaled).critical_delay_ps;
        ASSERT_GT(critical, previous) << "vdd=" << vdd;
        previous = critical;
    }
}

} // namespace
