// Differential tests pinning the 64-lane batched stepping path
// (dynamic_timing_simulator::step_batch) bit-identical to the scalar
// reference walk (step), over random netlists covering every combinational
// cell kind -- including const0/const1, whose all-0/all-1 lane words are a
// batch-specific edge -- at every paper voltage corner, for batch sizes
// 1/63/64/65 and odd tails, plus state continuity across interleaved
// scalar/batched stepping and argument validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuit/dynamic_timing.h"
#include "circuit/netlist_builder.h"
#include "util/rng.h"

namespace {

using namespace synts::circuit;
using synts::util::xoshiro256;

/// Random combinational DAG over ALL combinational cell kinds (the
/// random-netlists suite excludes const cells; the batch path must handle
/// their degenerate toggle behavior, so they are included here).
netlist make_batch_test_netlist(std::size_t inputs, std::size_t gates, xoshiro256& rng)
{
    static constexpr std::array<cell_kind, 17> kinds = {
        cell_kind::const0, cell_kind::const1, cell_kind::buf,   cell_kind::inv,
        cell_kind::and2,   cell_kind::or2,    cell_kind::nand2, cell_kind::nor2,
        cell_kind::xor2,   cell_kind::xnor2,  cell_kind::and3,  cell_kind::or3,
        cell_kind::nand3,  cell_kind::nor3,   cell_kind::aoi21, cell_kind::oai21,
        cell_kind::mux2};

    netlist nl("batch_random");
    std::vector<net_id> nets;
    for (std::size_t i = 0; i < inputs; ++i) {
        nets.push_back(nl.add_input("in" + std::to_string(i)));
    }
    for (std::size_t g = 0; g < gates; ++g) {
        const cell_kind kind = kinds[rng.uniform_below(kinds.size())];
        const std::size_t arity = cell_input_count(kind);
        std::array<net_id, 3> chosen{};
        for (std::size_t p = 0; p < arity; ++p) {
            chosen[p] = nets[rng.uniform_below(nets.size())];
        }
        nets.push_back(nl.add_gate(kind, std::span<const net_id>(chosen.data(), arity)));
    }
    std::size_t outputs = 0;
    for (const net_id net : nets) {
        if (net >= inputs && rng.bernoulli(0.2)) {
            nl.mark_output("out" + std::to_string(outputs++), net);
        }
    }
    nl.mark_output("out_last", nets.back());
    nl.validate();
    return nl;
}

/// Random vector stream for `inputs` primary inputs.
std::vector<std::vector<bool>> make_vectors(std::size_t inputs, std::size_t count,
                                            xoshiro256& rng)
{
    std::vector<std::vector<bool>> vectors(count, std::vector<bool>(inputs, false));
    for (auto& v : vectors) {
        for (std::size_t i = 0; i < inputs; ++i) {
            v[i] = rng.bernoulli(0.5);
        }
    }
    return vectors;
}

/// Packs vectors [first, first + lanes) into one word per input.
std::vector<std::uint64_t> pack_lanes(const std::vector<std::vector<bool>>& vectors,
                                      std::size_t first, std::size_t lanes,
                                      std::size_t inputs)
{
    std::vector<std::uint64_t> words(inputs, 0);
    for (std::size_t j = 0; j < lanes; ++j) {
        for (std::size_t i = 0; i < inputs; ++i) {
            if (vectors[first + j][i]) {
                words[i] |= 1ull << j;
            }
        }
    }
    return words;
}

struct corner_setup {
    cell_library lib = cell_library::standard_22nm();
    voltage_model vm{0.04};
    std::vector<double> corners{paper_voltage_levels().begin(),
                                paper_voltage_levels().end()};
};

/// Runs the full vector stream through a scalar sim and a batched sim
/// (chunks of `chunk_lanes`) and asserts every per-corner delay and the
/// final net state are EXACTLY equal.
void expect_batch_matches_scalar(const netlist& nl, const corner_setup& setup,
                                 const std::vector<std::vector<bool>>& vectors,
                                 std::size_t chunk_lanes)
{
    const auto tables = make_corner_tables(nl, setup.lib, setup.vm, setup.corners);
    const std::size_t corner_count = tables->corner_count();
    const std::size_t inputs = nl.input_count();

    dynamic_timing_simulator scalar_sim(nl, tables);
    dynamic_timing_simulator batch_sim(nl, tables);

    // Scalar reference walk. (std::vector<bool> is packed; copy each
    // vector into a flat bool buffer for the span-of-bool interface.)
    std::vector<std::vector<double>> expected; // [vector][corner]
    std::vector<double> delays(corner_count);
    const std::unique_ptr<bool[]> raw(new bool[inputs]);
    for (const auto& v : vectors) {
        for (std::size_t i = 0; i < inputs; ++i) {
            raw[i] = v[i];
        }
        scalar_sim.step(std::span<const bool>(raw.get(), inputs), delays);
        expected.push_back(delays);
    }

    // Batched walk in chunks of chunk_lanes (with an odd tail when
    // vectors.size() is not a multiple).
    std::vector<double> batch_delays(corner_count * chunk_lanes);
    std::size_t offset = 0;
    while (offset < vectors.size()) {
        const std::size_t lanes = std::min(chunk_lanes, vectors.size() - offset);
        const auto words = pack_lanes(vectors, offset, lanes, inputs);
        batch_sim.step_batch(words, lanes,
                             std::span<double>(batch_delays.data(),
                                               corner_count * lanes));
        for (std::size_t j = 0; j < lanes; ++j) {
            for (std::size_t c = 0; c < corner_count; ++c) {
                // EXPECT_EQ on doubles: bit-identity, not approximate.
                ASSERT_EQ(batch_delays[c * lanes + j], expected[offset + j][c])
                    << "vector " << offset + j << " corner " << c << " chunk "
                    << chunk_lanes;
            }
        }
        offset += lanes;
    }

    // Final carried state must agree net-for-net.
    const auto scalar_values = scalar_sim.net_values();
    const auto batch_values = batch_sim.net_values();
    ASSERT_EQ(scalar_values.size(), batch_values.size());
    for (std::size_t n = 0; n < scalar_values.size(); ++n) {
        ASSERT_EQ(batch_values[n], scalar_values[n]) << "net " << n;
    }
    for (std::size_t o = 0; o < nl.output_count(); ++o) {
        ASSERT_EQ(batch_sim.output_value(o), scalar_sim.output_value(o));
    }
}

class dynamic_timing_batch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(dynamic_timing_batch, matches_scalar_across_batch_sizes)
{
    xoshiro256 rng(GetParam());
    const corner_setup setup;
    const std::size_t inputs = 4 + rng.uniform_below(12);
    const std::size_t gates = 20 + rng.uniform_below(200);
    const netlist nl = make_batch_test_netlist(inputs, gates, rng);

    // 150 vectors: chunk 64 leaves a 22-lane odd tail; 63 leaves 24; the
    // explicit sizes cover the word edges (1, 63, 64) and a 65-vector
    // stream split 64 + 1.
    const auto vectors = make_vectors(inputs, 150, rng);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{63},
                                    std::size_t{64}}) {
        expect_batch_matches_scalar(nl, setup, vectors, chunk);
    }
    const auto sixty_five = make_vectors(inputs, 65, rng);
    expect_batch_matches_scalar(nl, setup, sixty_five, 64);
    const auto single = make_vectors(inputs, 1, rng);
    expect_batch_matches_scalar(nl, setup, single, 64);
}

TEST_P(dynamic_timing_batch, interleaved_scalar_and_batched_stepping_agree)
{
    xoshiro256 rng(GetParam() ^ 0xBEEF);
    const corner_setup setup;
    const std::size_t inputs = 5 + rng.uniform_below(8);
    const netlist nl = make_batch_test_netlist(inputs, 120, rng);
    const auto tables = make_corner_tables(nl, setup.lib, setup.vm, setup.corners);
    const std::size_t corner_count = tables->corner_count();

    const auto vectors = make_vectors(inputs, 100, rng);

    // Reference: all-scalar walk.
    dynamic_timing_simulator ref(nl, tables);
    std::vector<std::vector<double>> expected;
    std::vector<double> delays(corner_count);
    std::unique_ptr<bool[]> raw(new bool[inputs]);
    for (const auto& v : vectors) {
        for (std::size_t i = 0; i < inputs; ++i) {
            raw[i] = v[i];
        }
        ref.step(std::span<const bool>(raw.get(), inputs), delays);
        expected.push_back(delays);
    }

    // Mixed walk: random alternation of scalar steps and batches.
    dynamic_timing_simulator mixed(nl, tables);
    std::vector<double> batch_delays(corner_count * 64);
    std::size_t offset = 0;
    while (offset < vectors.size()) {
        if (rng.bernoulli(0.5)) {
            for (std::size_t i = 0; i < inputs; ++i) {
                raw[i] = vectors[offset][i];
            }
            mixed.step(std::span<const bool>(raw.get(), inputs), delays);
            for (std::size_t c = 0; c < corner_count; ++c) {
                ASSERT_EQ(delays[c], expected[offset][c]);
            }
            ++offset;
        } else {
            const std::size_t lanes =
                std::min<std::size_t>(1 + rng.uniform_below(64), vectors.size() - offset);
            const auto words = pack_lanes(vectors, offset, lanes, inputs);
            mixed.step_batch(words, lanes,
                             std::span<double>(batch_delays.data(),
                                               corner_count * lanes));
            for (std::size_t j = 0; j < lanes; ++j) {
                for (std::size_t c = 0; c < corner_count; ++c) {
                    ASSERT_EQ(batch_delays[c * lanes + j], expected[offset + j][c]);
                }
            }
            offset += lanes;
        }
    }

    const auto a = ref.net_values();
    const auto b = mixed.net_values();
    for (std::size_t n = 0; n < a.size(); ++n) {
        ASSERT_EQ(b[n], a[n]);
    }
}

TEST_P(dynamic_timing_batch, reset_restores_the_baseline_for_both_paths)
{
    xoshiro256 rng(GetParam() ^ 0x5150);
    const corner_setup setup;
    const std::size_t inputs = 6;
    const netlist nl = make_batch_test_netlist(inputs, 60, rng);
    const auto tables = make_corner_tables(nl, setup.lib, setup.vm, setup.corners);
    const std::size_t corner_count = tables->corner_count();
    const auto vectors = make_vectors(inputs, 40, rng);

    dynamic_timing_simulator sim(nl, tables);

    // First pass batched, reset, second pass scalar: the scalar pass must
    // reproduce a fresh simulator's delays exactly (reset() leaves the
    // settle-time scratch dirty on purpose; stale entries must be
    // unreachable).
    std::vector<double> batch_delays(corner_count * 64);
    std::size_t offset = 0;
    while (offset < vectors.size()) {
        const std::size_t lanes = std::min<std::size_t>(64, vectors.size() - offset);
        const auto words = pack_lanes(vectors, offset, lanes, inputs);
        sim.step_batch(words, lanes,
                       std::span<double>(batch_delays.data(), corner_count * lanes));
        offset += lanes;
    }
    sim.reset();

    dynamic_timing_simulator fresh(nl, tables);
    std::vector<double> a(corner_count);
    std::vector<double> b(corner_count);
    std::unique_ptr<bool[]> raw(new bool[inputs]);
    for (const auto& v : vectors) {
        for (std::size_t i = 0; i < inputs; ++i) {
            raw[i] = v[i];
        }
        sim.step(std::span<const bool>(raw.get(), inputs), a);
        fresh.step(std::span<const bool>(raw.get(), inputs), b);
        for (std::size_t c = 0; c < corner_count; ++c) {
            ASSERT_EQ(a[c], b[c]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, dynamic_timing_batch,
                         ::testing::Values(101ull, 202ull, 303ull, 404ull, 505ull));

TEST(dynamic_timing_batch, rejects_bad_arguments)
{
    xoshiro256 rng(7);
    const corner_setup setup;
    const netlist nl = make_batch_test_netlist(4, 30, rng);
    const auto tables = make_corner_tables(nl, setup.lib, setup.vm, setup.corners);
    dynamic_timing_simulator sim(nl, tables);
    const std::size_t corner_count = tables->corner_count();

    std::vector<std::uint64_t> words(nl.input_count(), 0);
    std::vector<double> out(corner_count * 64);

    // Wrong word-span width.
    std::vector<std::uint64_t> short_words(nl.input_count() - 1, 0);
    EXPECT_THROW(sim.step_batch(short_words, 1,
                                std::span<double>(out.data(), corner_count)),
                 std::invalid_argument);
    // Lane count out of range.
    EXPECT_THROW(sim.step_batch(words, 0, std::span<double>(out.data(), 0)),
                 std::invalid_argument);
    EXPECT_THROW(sim.step_batch(words, 65,
                                std::span<double>(out.data(), corner_count * 64)),
                 std::invalid_argument);
    // Delay buffer must be exactly corner_count * lane_count.
    EXPECT_THROW(sim.step_batch(words, 2, std::span<double>(out.data(), corner_count)),
                 std::invalid_argument);
}

TEST(dynamic_timing_batch, corner_tables_transpose_is_consistent)
{
    xoshiro256 rng(11);
    const corner_setup setup;
    const netlist nl = make_batch_test_netlist(5, 50, rng);

    // Joint tables over all corners vs one table per corner: the
    // corner-minor layout must hold each gate's per-corner delays
    // contiguously and agree with the independently built single-corner
    // tables (same arithmetic, different layout).
    const auto joint = make_corner_tables(nl, setup.lib, setup.vm, setup.corners);
    ASSERT_EQ(joint->corner_count(), setup.corners.size());
    ASSERT_EQ(joint->gate_delay_ps.size(), nl.gates().size() * setup.corners.size());
    for (std::size_t c = 0; c < setup.corners.size(); ++c) {
        const double level[1] = {setup.corners[c]};
        const auto single = make_corner_tables(nl, setup.lib, setup.vm, level);
        ASSERT_EQ(single->nominal_period_ps[0], joint->nominal_period_ps[c]);
        for (std::size_t g = 0; g < nl.gates().size(); ++g) {
            ASSERT_EQ(joint->gate_delays(static_cast<gate_id>(g))[c],
                      single->gate_delay_ps[g])
                << "gate " << g << " corner " << c;
        }
    }
}

} // namespace
