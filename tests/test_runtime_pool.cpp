// Tests for runtime/thread_pool: correctness under contention, exception
// propagation through futures, parallel_for vs serial equivalence, and
// help-while-waiting (no deadlock from nested parallelism, even on a
// single-worker pool).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.h"

namespace {

using synts::runtime::thread_pool;

TEST(runtime_pool, worker_count_defaults_to_at_least_one)
{
    thread_pool pool;
    EXPECT_GE(pool.worker_count(), 1u);
    thread_pool fixed(3);
    EXPECT_EQ(fixed.worker_count(), 3u);
}

TEST(runtime_pool, submit_returns_value_through_future)
{
    thread_pool pool(2);
    auto future = pool.submit([](int a, int b) { return a + b; }, 20, 22);
    EXPECT_EQ(future.get(), 42);
}

TEST(runtime_pool, many_tasks_all_execute_exactly_once)
{
    thread_pool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    constexpr int n = 2000;
    futures.reserve(n);
    for (int i = 0; i < n; ++i) {
        futures.push_back(pool.submit([&counter] {
            counter.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    for (auto& f : futures) {
        f.get();
    }
    EXPECT_EQ(counter.load(), n);
    EXPECT_GE(pool.executed_count(), static_cast<std::uint64_t>(n));
}

TEST(runtime_pool, results_deterministic_vs_serial_run)
{
    // Each task computes a pure function of its index into a pre-assigned
    // slot; the aggregate must equal the serial evaluation regardless of
    // scheduling order.
    constexpr std::size_t n = 500;
    std::vector<double> serial(n);
    for (std::size_t i = 0; i < n; ++i) {
        serial[i] = std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
    }

    thread_pool pool(4);
    std::vector<double> parallel(n);
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        futures.push_back(pool.submit([&parallel, i] {
            parallel[i] = std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
        }));
    }
    for (auto& f : futures) {
        f.get();
    }
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(parallel[i], serial[i]) << "slot " << i;
    }
}

TEST(runtime_pool, exceptions_propagate_and_pool_survives)
{
    thread_pool pool(2);
    auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW((void)bad.get(), std::runtime_error);
    // The worker that ran the throwing task must still serve new work.
    auto good = pool.submit([] { return 7; });
    EXPECT_EQ(good.get(), 7);
}

TEST(runtime_pool, parallel_for_covers_every_index_once)
{
    thread_pool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(0, n, [&visits](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(runtime_pool, parallel_for_empty_and_single_ranges)
{
    thread_pool pool(2);
    int calls = 0;
    pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> one{0};
    pool.parallel_for(9, 10, [&one](std::size_t i) {
        EXPECT_EQ(i, 9u);
        one.fetch_add(1);
    });
    EXPECT_EQ(one.load(), 1);
}

TEST(runtime_pool, parallel_for_propagates_body_exception)
{
    thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [](std::size_t i) {
                                       if (i == 37) {
                                           throw std::logic_error("index 37");
                                       }
                                   },
                                   8),
                 std::logic_error);
}

TEST(runtime_pool, nested_parallel_for_does_not_deadlock_single_worker)
{
    // The inner parallel_for runs on the pool's only worker; the helping
    // waiter must drain the inner blocks instead of parking forever.
    thread_pool pool(1);
    std::atomic<int> inner_total{0};
    auto outer = pool.submit([&pool, &inner_total] {
        pool.parallel_for(0, 16, [&inner_total](std::size_t) {
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    outer.get();
    EXPECT_EQ(inner_total.load(), 16);
}

TEST(runtime_pool, submissions_from_tasks_are_stealable)
{
    // Tasks submitted from inside a worker go to that worker's own queue;
    // other workers must still be able to steal them.
    thread_pool pool(4);
    std::atomic<int> total{0};
    auto root = pool.submit([&pool, &total] {
        std::vector<std::future<void>> children;
        children.reserve(64);
        for (int i = 0; i < 64; ++i) {
            children.push_back(pool.submit([&total] {
                total.fetch_add(1, std::memory_order_relaxed);
            }));
        }
        for (auto& child : children) {
            while (child.wait_for(std::chrono::milliseconds(1)) !=
                   std::future_status::ready) {
            }
        }
    });
    root.get();
    EXPECT_EQ(total.load(), 64);
}

TEST(runtime_pool, destructor_drains_queued_tasks)
{
    std::atomic<int> done{0};
    {
        thread_pool pool(1);
        for (int i = 0; i < 50; ++i) {
            (void)pool.submit([&done] { done.fetch_add(1); });
        }
    } // ~thread_pool drains, then joins
    EXPECT_EQ(done.load(), 50);
}

TEST(runtime_pool, tasks_submitted_during_destructor_drain_still_run)
{
    // Shutdown contract: a running task may submit() follow-ups while the
    // destructor drains; they land on the submitting worker's own queue and
    // workers only exit once nothing is pending, so every link of the chain
    // executes before join. Regression-pins the drain ordering (this suite
    // runs under TSan in CI, so it also pins the absence of a rebuilt
    // submit/stop race).
    std::atomic<int> chain{0};
    {
        thread_pool pool(2);
        for (int i = 0; i < 8; ++i) {
            (void)pool.submit([&pool, &chain] {
                (void)pool.submit([&pool, &chain] {
                    (void)pool.submit([&chain] { chain.fetch_add(1); });
                    chain.fetch_add(1);
                });
                chain.fetch_add(1);
            });
        }
    } // destructor begins while the chains are mid-flight
    EXPECT_EQ(chain.load(), 3 * 8);
}

TEST(runtime_pool, destruction_with_mixed_pending_and_running_work_loses_nothing)
{
    // Queued-but-never-started tasks and in-flight tasks drain alike: the
    // executed count at join time equals every submission ever made, so no
    // pending task is destroyed unexecuted (futures would otherwise report
    // broken_promise to their holders).
    constexpr int n = 200;
    std::atomic<int> done{0};
    std::uint64_t executed = 0;
    {
        thread_pool pool(3);
        for (int i = 0; i < n; ++i) {
            (void)pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
        }
        // Destructor runs with most of the 200 still queued.
    }
    executed = done.load();
    EXPECT_EQ(executed, static_cast<std::uint64_t>(n));
}

} // namespace
