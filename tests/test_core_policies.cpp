// Tests for core/policies: the five compared schemes on synthetic intervals.

#include <gtest/gtest.h>

#include <deque>

#include "core/policies.h"
#include "solver_fixtures.h"
#include "util/rng.h"

namespace {

using namespace synts::core;
using synts::test::make_random_instance;

/// Synthetic characterization whose sampling trace reproduces the given
/// synthetic curve's exceedance behavior at the nominal corner.
interval_characterization make_matching_interval(const config_space& space,
                                                 const error_curve& curve,
                                                 std::uint64_t instructions,
                                                 std::uint64_t seed)
{
    interval_characterization data;
    data.instruction_count = instructions;
    synts::util::xoshiro256 rng(seed);
    const double tnom = space.tnom_ps(0);

    // Invert the curve into a delay distribution: draw r* uniform, delay =
    // r* mapped so that P(delay > r tnom) ~ curve err at r. We approximate
    // by mixing: with probability err(r_min) the vector is "heavy" with a
    // delay drawn above r_min; light otherwise.
    const double err_floor = curve.error_probability(0, space.tsr(0));
    for (std::uint64_t n = 0; n < instructions; ++n) {
        double delay;
        if (rng.bernoulli(err_floor)) {
            // Heavy vector: depth uniform over the speculative band.
            delay = rng.uniform(space.tsr(0), 1.0) * tnom;
        } else {
            delay = rng.uniform(0.1, 0.5) * space.tsr(0) * tnom;
        }
        data.sampling_delays_ps.push_back(static_cast<float>(delay));
        data.sampling_instr_index.push_back(static_cast<std::uint32_t>(n));
        ++data.vector_count;
    }
    data.delay_histograms.emplace_back(0.0, tnom * 1.05, 64);
    return data;
}

TEST(policies, names_and_order)
{
    EXPECT_EQ(policy_name(policy_kind::nominal), "Nominal");
    EXPECT_EQ(policy_name(policy_kind::per_core_ts), "Per-core TS");
    EXPECT_EQ(policy_name(policy_kind::synts_online), "SynTS (online)");
    EXPECT_EQ(all_policies().size(), policy_count);
    EXPECT_EQ(all_policies()[0], policy_kind::nominal);
}

TEST(policies, offline_outcomes_match_solvers)
{
    auto inst = make_random_instance(4, 4, 4, 21);
    const policy_engine engine;
    const interval_outcome nominal = engine.run_interval(policy_kind::nominal, inst.input);
    EXPECT_DOUBLE_EQ(nominal.energy, nominal_solution(inst.input).total_energy);
    EXPECT_DOUBLE_EQ(nominal.sampling_energy, 0.0);

    const interval_outcome offline =
        engine.run_interval(policy_kind::synts_offline, inst.input);
    EXPECT_DOUBLE_EQ(offline.energy, solve_synts_poly(inst.input).total_energy);

    const interval_outcome per_core =
        engine.run_interval(policy_kind::per_core_ts, inst.input);
    EXPECT_DOUBLE_EQ(per_core.time_ps, solve_per_core_ts(inst.input).exec_time_ps);
}

TEST(policies, offline_cost_ordering)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto inst = make_random_instance(4, 5, 4, seed * 71);
        const policy_engine engine;
        const double synts_cost =
            engine.run_interval(policy_kind::synts_offline, inst.input)
                .solution.weighted_cost;
        for (const policy_kind kind :
             {policy_kind::nominal, policy_kind::no_ts, policy_kind::per_core_ts}) {
            ASSERT_LE(synts_cost,
                      engine.run_interval(kind, inst.input).solution.weighted_cost + 1e-9)
                << policy_name(kind) << " seed " << seed;
        }
    }
}

TEST(policies, online_requires_characterization_data)
{
    auto inst = make_random_instance(3, 3, 3, 31);
    const policy_engine engine;
    EXPECT_THROW((void)engine.run_interval(policy_kind::synts_online, inst.input),
                 std::invalid_argument);
}

class online_policy_fixture : public ::testing::Test {
protected:
    online_policy_fixture()
        : inst(make_random_instance(4, 7, 6, 77))
    {
        inst.input.theta = equal_weight_theta(inst.input);
        for (std::size_t i = 0; i < 4; ++i) {
            data.push_back(make_matching_interval(*inst.space,
                                                  *inst.input.error_models[i],
                                                  inst.input.workloads[i].instructions,
                                                  1000 + i));
            pointers.push_back(&data.back());
        }
    }

    synts::test::solver_instance inst;
    std::deque<interval_characterization> data;
    std::vector<const interval_characterization*> pointers;
};

TEST_F(online_policy_fixture, online_charges_sampling_overhead)
{
    const policy_engine engine;
    const interval_outcome online =
        engine.run_interval(policy_kind::synts_online, inst.input, pointers);
    EXPECT_GT(online.sampling_energy, 0.0);
    EXPECT_GT(online.sampling_time_ps, 0.0);
    EXPECT_GE(online.energy, online.solution.total_energy);
    EXPECT_GE(online.time_ps, online.solution.exec_time_ps);
}

TEST_F(online_policy_fixture, online_close_to_offline_but_not_better_in_cost)
{
    const policy_engine engine;
    const interval_outcome offline =
        engine.run_interval(policy_kind::synts_offline, inst.input);
    const interval_outcome online =
        engine.run_interval(policy_kind::synts_online, inst.input, pointers);
    const double offline_cost =
        offline.energy + inst.input.theta * offline.time_ps;
    const double online_cost = online.energy + inst.input.theta * online.time_ps;
    // Online pays sampling overhead plus estimation noise; it cannot beat
    // offline by more than noise, and should stay within 2x.
    EXPECT_GT(online_cost, 0.95 * offline_cost);
    EXPECT_LT(online_cost, 2.0 * offline_cost);
}

TEST_F(online_policy_fixture, online_deterministic)
{
    const policy_engine engine;
    const interval_outcome a =
        engine.run_interval(policy_kind::synts_online, inst.input, pointers);
    const interval_outcome b =
        engine.run_interval(policy_kind::synts_online, inst.input, pointers);
    EXPECT_DOUBLE_EQ(a.energy, b.energy);
    EXPECT_DOUBLE_EQ(a.time_ps, b.time_ps);
}

} // namespace
