// Tests for arch/pipeline: cycle accounting of the in-order core.

#include <gtest/gtest.h>

#include "arch/pipeline.h"

namespace {

using namespace synts::arch;

std::vector<micro_op> ops_of(std::initializer_list<op_class> classes)
{
    std::vector<micro_op> ops;
    for (const op_class cls : classes) {
        micro_op op;
        op.cls = cls;
        ops.push_back(op);
    }
    return ops;
}

TEST(pipeline, single_cycle_ops_have_cpi_one)
{
    inorder_core core(core_config{});
    const auto ops = ops_of({op_class::int_add, op_class::int_sub, op_class::int_logic,
                             op_class::nop});
    const exec_stats stats = core.execute(ops);
    EXPECT_EQ(stats.instructions, 4u);
    EXPECT_EQ(stats.cycles, 4u);
    EXPECT_DOUBLE_EQ(stats.cpi(), 1.0);
}

TEST(pipeline, multiply_adds_latency)
{
    core_config cfg;
    cfg.mul_latency_cycles = 3;
    inorder_core core(cfg);
    const auto ops = ops_of({op_class::int_mul});
    const exec_stats stats = core.execute(ops);
    EXPECT_EQ(stats.cycles, 4u);
    EXPECT_EQ(stats.long_op_cycles, 3u);
}

TEST(pipeline, fp_adds_latency)
{
    core_config cfg;
    cfg.fp_latency_cycles = 2;
    inorder_core core(cfg);
    const auto ops = ops_of({op_class::fp, op_class::fp});
    const exec_stats stats = core.execute(ops);
    EXPECT_EQ(stats.cycles, 6u);
}

TEST(pipeline, cold_load_pays_miss_penalty)
{
    core_config cfg;
    cfg.dcache.miss_penalty_cycles = 24;
    inorder_core core(cfg);
    micro_op load;
    load.cls = op_class::load;
    load.address = 0x5000;
    const exec_stats first = core.execute(std::span<const micro_op>(&load, 1));
    EXPECT_EQ(first.cycles, 25u);
    EXPECT_EQ(first.dcache_miss_cycles, 24u);
    const exec_stats second = core.execute(std::span<const micro_op>(&load, 1));
    EXPECT_EQ(second.cycles, 1u);
}

TEST(pipeline, branch_mispredict_penalty_accounted)
{
    core_config cfg;
    cfg.branch_mispredict_penalty = 8;
    inorder_core core(cfg);
    // First taken branch after reset mispredicts (weakly not-taken init).
    micro_op branch;
    branch.cls = op_class::branch;
    branch.branch_taken = true;
    const exec_stats stats = core.execute(std::span<const micro_op>(&branch, 1));
    EXPECT_EQ(stats.cycles, 9u);
    EXPECT_EQ(stats.branch_penalty_cycles, 8u);
}

TEST(pipeline, reset_restores_cold_state)
{
    inorder_core core(core_config{});
    micro_op load;
    load.cls = op_class::load;
    load.address = 0x9000;
    (void)core.execute(std::span<const micro_op>(&load, 1));
    core.reset();
    const exec_stats stats = core.execute(std::span<const micro_op>(&load, 1));
    EXPECT_GT(stats.dcache_miss_cycles, 0u);
}

TEST(pipeline, deterministic_across_identical_runs)
{
    const auto ops = ops_of({op_class::int_add, op_class::load, op_class::branch,
                             op_class::int_mul, op_class::fp});
    inorder_core a(core_config{});
    inorder_core b(core_config{});
    const exec_stats sa = a.execute(ops);
    const exec_stats sb = b.execute(ops);
    EXPECT_EQ(sa.cycles, sb.cycles);
}

TEST(pipeline, cpi_at_least_one)
{
    inorder_core core(core_config{});
    std::vector<micro_op> ops;
    for (int i = 0; i < 1000; ++i) {
        micro_op op;
        op.cls = static_cast<op_class>(i % static_cast<int>(op_class_count));
        op.address = static_cast<std::uint64_t>(i) * 64;
        op.branch_taken = (i % 3) == 0;
        ops.push_back(op);
    }
    const exec_stats stats = core.execute(ops);
    EXPECT_GE(stats.cpi(), 1.0);
    EXPECT_EQ(stats.cycles, stats.instructions + stats.dcache_miss_cycles +
                                stats.branch_penalty_cycles + stats.long_op_cycles);
}

} // namespace
