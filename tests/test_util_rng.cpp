// Tests for util/rng: determinism, distribution sanity, stream splitting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/statistics.h"

namespace {

using synts::util::xoshiro256;

TEST(rng, deterministic_for_equal_seeds)
{
    xoshiro256 a(123);
    xoshiro256 b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(rng, different_seeds_differ)
{
    xoshiro256 a(1);
    xoshiro256 b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(rng, uniform_is_in_unit_interval)
{
    xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(rng, uniform_mean_near_half)
{
    xoshiro256 rng(11);
    synts::util::running_stats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(rng.uniform());
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(rng, uniform_below_respects_bound)
{
    xoshiro256 rng(3);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_LT(rng.uniform_below(17), 17u);
    }
}

TEST(rng, uniform_below_covers_support)
{
    xoshiro256 rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        seen.insert(rng.uniform_below(8));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(rng, uniform_int_inclusive_bounds)
{
    xoshiro256 rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.uniform_int(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(rng, bernoulli_edge_cases)
{
    xoshiro256 rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-0.5));
        EXPECT_TRUE(rng.bernoulli(1.5));
    }
}

TEST(rng, bernoulli_frequency_matches_probability)
{
    xoshiro256 rng(13);
    const int n = 200000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(rng, normal_moments)
{
    xoshiro256 rng(17);
    synts::util::running_stats stats;
    for (int i = 0; i < 200000; ++i) {
        stats.add(rng.normal(2.0, 3.0));
    }
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(rng, exponential_mean)
{
    xoshiro256 rng(19);
    synts::util::running_stats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(rng.exponential(4.0));
    }
    EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(rng, geometric_mean)
{
    xoshiro256 rng(23);
    synts::util::running_stats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(static_cast<double>(rng.geometric(0.25)));
    }
    // Mean failures before success: (1 - p) / p = 3.
    EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(rng, discrete_respects_weights)
{
    xoshiro256 rng(29);
    const std::array<double, 3> weights = {1.0, 0.0, 3.0};
    std::array<int, 3> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.discrete(weights)];
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(rng, split_streams_are_decorrelated)
{
    xoshiro256 root(31);
    xoshiro256 a = root.split(0);
    xoshiro256 b = root.split(1);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 10000; ++i) {
        xs.push_back(a.uniform());
        ys.push_back(b.uniform());
    }
    EXPECT_LT(std::abs(synts::util::pearson_correlation(xs, ys)), 0.05);
}

TEST(rng, random_permutation_is_permutation)
{
    xoshiro256 rng(37);
    std::vector<std::size_t> perm(50);
    synts::util::random_permutation(rng, perm);
    std::vector<std::size_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        ASSERT_EQ(sorted[i], i);
    }
}

TEST(rng, sample_without_replacement_unique_and_in_range)
{
    xoshiro256 rng(41);
    for (int round = 0; round < 100; ++round) {
        const auto sample = synts::util::sample_without_replacement(rng, 20, 7);
        ASSERT_EQ(sample.size(), 7u);
        std::set<std::size_t> unique(sample.begin(), sample.end());
        ASSERT_EQ(unique.size(), 7u);
        for (const auto v : sample) {
            ASSERT_LT(v, 20u);
        }
    }
}

class rng_seed_sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(rng_seed_sweep, jump_produces_disjoint_stream)
{
    xoshiro256 a(GetParam());
    xoshiro256 b = a;
    b.jump();
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST_P(rng_seed_sweep, uniform_below_unbiased_small_modulus)
{
    xoshiro256 rng(GetParam());
    std::array<int, 5> counts{};
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.uniform_below(5)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, rng_seed_sweep,
                         ::testing::Values(1ull, 42ull, 1234567ull, 0xDEADBEEFull,
                                           0xFFFFFFFFFFFFFFFFull));

} // namespace
