// Tests for core/system_model: Eqs. 4.1-4.4 evaluation.

#include <gtest/gtest.h>

#include "core/system_model.h"
#include "solver_fixtures.h"

namespace {

using namespace synts::core;

TEST(system_model, evaluate_thread_matches_hand_computation)
{
    const config_space space({1.0, 0.8}, {0.8, 1.0}, {100.0, 140.0});
    const synthetic_error_curve curve(0.9, 0.5, 0.1, 1.0);
    const thread_workload workload{1000, 1.5};
    synts::energy::energy_params params;
    params.alpha_switching_cap = 2.0;

    const thread_assignment a{1, 0}; // V = 0.8, r = 0.8
    const thread_metrics m = evaluate_thread(space, workload, curve, a, params);

    EXPECT_DOUBLE_EQ(m.vdd, 0.8);
    EXPECT_DOUBLE_EQ(m.tsr, 0.8);
    EXPECT_DOUBLE_EQ(m.clock_period_ps, 0.8 * 140.0);
    const double p = curve.error_probability(1, 0.8); // 0.1 * (0.1/0.4)
    EXPECT_DOUBLE_EQ(m.error_probability, p);
    EXPECT_DOUBLE_EQ(m.time_ps, 1000.0 * 112.0 * (p * 5 + 1.5));
    EXPECT_DOUBLE_EQ(m.energy, 2.0 * 0.64 * 1000.0 * (p * 5 + 1.5));
}

TEST(system_model, evaluate_assignment_aggregates)
{
    auto inst = synts::test::make_random_instance(4, 3, 3, 11);
    std::vector<thread_assignment> assignments(4, inst.space->nominal_assignment());
    const interval_solution sol = evaluate_assignment(inst.input, assignments);

    double max_time = 0.0;
    double sum_energy = 0.0;
    for (const auto& m : sol.metrics) {
        max_time = std::max(max_time, m.time_ps);
        sum_energy += m.energy;
    }
    EXPECT_DOUBLE_EQ(sol.exec_time_ps, max_time);
    EXPECT_DOUBLE_EQ(sol.total_energy, sum_energy);
    EXPECT_DOUBLE_EQ(sol.weighted_cost,
                     sum_energy + inst.input.theta * max_time);
    EXPECT_DOUBLE_EQ(sol.edp(), sum_energy * max_time);
}

TEST(system_model, evaluate_assignment_validates_sizes)
{
    auto inst = synts::test::make_random_instance(3, 2, 2, 5);
    std::vector<thread_assignment> wrong(2, inst.space->nominal_assignment());
    EXPECT_THROW((void)evaluate_assignment(inst.input, wrong), std::invalid_argument);
}

TEST(system_model, solver_input_validation)
{
    auto inst = synts::test::make_random_instance(2, 2, 2, 7);
    solver_input bad = inst.input;
    bad.space = nullptr;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = inst.input;
    bad.error_models.pop_back();
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = inst.input;
    bad.theta = -1.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = inst.input;
    bad.error_models[0] = nullptr;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(system_model, equal_weight_theta_balances_terms)
{
    auto inst = synts::test::make_random_instance(4, 3, 4, 13);
    const double theta = equal_weight_theta(inst.input);
    const std::vector<thread_assignment> nominal(4, inst.space->nominal_assignment());
    const interval_solution sol = evaluate_assignment(inst.input, nominal);
    EXPECT_NEAR(theta * sol.exec_time_ps, sol.total_energy,
                1e-9 * sol.total_energy);
}

} // namespace
