// Tests for util/statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/statistics.h"

namespace {

using namespace synts::util;

TEST(running_stats, empty_state)
{
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(running_stats, matches_direct_computation)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
    running_stats s;
    for (const double x : xs) {
        s.add(x);
    }
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_DOUBLE_EQ(s.mean(), 6.2);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 16.0);
    // Sample variance computed by hand: sum((x - 6.2)^2) / 4 = 37.2.
    EXPECT_NEAR(s.variance(), 37.2, 1e-12);
    EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(running_stats, merge_equals_sequential)
{
    xoshiro256 rng(5);
    running_stats all;
    running_stats left;
    running_stats right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        all.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(running_stats, merge_with_empty)
{
    running_stats a;
    a.add(1.0);
    a.add(3.0);
    running_stats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(quantile, interpolates_between_order_statistics)
{
    const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
    EXPECT_NEAR(quantile(xs, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(quantile, handles_unsorted_input)
{
    const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(quantile, empty_returns_zero)
{
    EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(exceedance, counts_strictly_greater)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(exceedance_fraction(xs, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(exceedance_fraction(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(exceedance_fraction(xs, 4.0), 0.0);
}

TEST(pearson, perfect_correlation)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
}

TEST(pearson, perfect_anticorrelation)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> ys = {3.0, 2.0, 1.0};
    EXPECT_NEAR(pearson_correlation(xs, ys), -1.0, 1e-12);
}

TEST(pearson, constant_series_returns_zero)
{
    const std::vector<double> xs = {1.0, 1.0, 1.0};
    const std::vector<double> ys = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(pearson_correlation(xs, ys), 0.0);
}

TEST(errors, mae_and_rmse)
{
    const std::vector<double> truth = {1.0, 2.0, 3.0};
    const std::vector<double> estimate = {1.5, 1.5, 3.0};
    EXPECT_NEAR(mean_absolute_error(truth, estimate), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(root_mean_squared_error(truth, estimate),
                std::sqrt((0.25 + 0.25 + 0.0) / 3.0), 1e-12);
}

TEST(total_variation, identical_distributions)
{
    const std::vector<double> p = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(total_variation_distance(p, p), 0.0);
}

TEST(total_variation, disjoint_distributions)
{
    const std::vector<double> p = {1.0, 0.0};
    const std::vector<double> q = {0.0, 1.0};
    EXPECT_DOUBLE_EQ(total_variation_distance(p, q), 1.0);
}

TEST(total_variation, symmetric_and_bounded)
{
    xoshiro256 rng(3);
    for (int round = 0; round < 50; ++round) {
        std::vector<double> p(8);
        std::vector<double> q(8);
        for (std::size_t i = 0; i < 8; ++i) {
            p[i] = rng.uniform();
            q[i] = rng.uniform();
        }
        const double pq = total_variation_distance(p, q);
        const double qp = total_variation_distance(q, p);
        ASSERT_NEAR(pq, qp, 1e-12);
        ASSERT_GE(pq, 0.0);
        ASSERT_LE(pq, 1.0);
    }
}

TEST(total_variation, normalization_invariant)
{
    const std::vector<double> p = {1.0, 2.0, 3.0};
    std::vector<double> p_scaled = {10.0, 20.0, 30.0};
    const std::vector<double> q = {3.0, 2.0, 1.0};
    EXPECT_NEAR(total_variation_distance(p, q), total_variation_distance(p_scaled, q),
                1e-12);
}

TEST(wilson, half_width_shrinks_with_samples)
{
    const double w10 = wilson_half_width(3, 10);
    const double w1000 = wilson_half_width(300, 1000);
    EXPECT_LT(w1000, w10);
    EXPECT_GT(w10, 0.0);
}

TEST(wilson, zero_trials_returns_one)
{
    EXPECT_DOUBLE_EQ(wilson_half_width(0, 0), 1.0);
}

TEST(wilson, contains_truth_about_95_percent)
{
    xoshiro256 rng(77);
    const double p = 0.07;
    const int trials = 500;
    int covered = 0;
    const int rounds = 400;
    for (int round = 0; round < rounds; ++round) {
        int successes = 0;
        for (int i = 0; i < trials; ++i) {
            successes += rng.bernoulli(p) ? 1 : 0;
        }
        const double estimate = static_cast<double>(successes) / trials;
        const double half = wilson_half_width(static_cast<std::size_t>(successes), trials);
        if (std::abs(estimate - p) <= half) {
            ++covered;
        }
    }
    EXPECT_GT(static_cast<double>(covered) / rounds, 0.90);
}

} // namespace
