// Tests for the sweep progress frames and the --status fleet view: shard
// runs publish shard_progress frames (and unsharded store-backed runs
// publish as shard 0 of 1) whose counts match the completion manifests
// exactly, and render_store_status reconstructs per-shard and total
// progress from nothing but the store's manifest bucket.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "runtime/experiment_cache.h"
#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "runtime/thread_pool.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"
#include "util/hashing.h"
#include "workload/registry.h"
#include "workload/scenarios.h"

namespace {

using namespace synts;
namespace fs = std::filesystem;

struct temp_dir {
    fs::path path;

    temp_dir()
    {
        static std::atomic<std::uint64_t> counter{0};
        path = fs::temp_directory_path() /
               ("synts_obs_status_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }
    ~temp_dir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/// Tiny registered workload (1 interval x 500 instructions) so store-backed
/// sweeps run in milliseconds; distinct from other suites' names.
workload::workload_key tiny_workload(const std::string& name, std::uint64_t salt)
{
    workload::workload_registry& global = workload::workload_registry::global();
    if (global.contains(name)) {
        return global.key(name);
    }
    util::digest_builder h;
    h.text("tiny_obs_status_workload");
    h.text(name);
    h.u64(salt);
    const workload::workload_key key{name, h.digest()};
    global.add(key, [salt](std::size_t thread_count) {
        workload::benchmark_profile profile =
            workload::make_lock_ladder_profile(workload::lock_ladder_params{},
                                               thread_count);
        profile.stream_salt = salt;
        profile.interval_count = 1;
        profile.instructions_per_interval = 500;
        return profile;
    });
    return key;
}

/// 3 pairs x 2 policies = 6 cells; shard 0 of 2 owns pairs {0, 2} = 4
/// cells, shard 1 of 2 owns pair {1} = 2 cells.
runtime::sweep_spec tiny_spec()
{
    runtime::sweep_spec spec;
    spec.benchmarks = {tiny_workload("obs_status_a", 71),
                       tiny_workload("obs_status_b", 72),
                       tiny_workload("obs_status_c", 73)};
    spec.stages = {circuit::pipe_stage::simple_alu};
    spec.policies = {core::policy_kind::nominal, core::policy_kind::per_core_ts};
    return spec;
}

std::optional<runtime::shard_progress> load_progress(const storage::artifact_store& store,
                                                     std::uint64_t spec_digest,
                                                     std::size_t count, std::size_t index)
{
    const std::optional<std::string> frame = store.load(
        storage::manifest_bucket,
        runtime::shard_progress_digest(spec_digest, count, index));
    if (!frame) {
        return std::nullopt;
    }
    return storage::decode_shard_progress(*frame);
}

TEST(obs_status, shard_run_publishes_progress_matching_its_manifest)
{
    const runtime::sweep_spec spec = tiny_spec();
    const std::uint64_t digest = spec.digest();
    temp_dir dir;
    storage::artifact_store store(dir.path);
    runtime::thread_pool pool(2);

    runtime::experiment_cache cache;
    (void)runtime::sweep_scheduler(pool, cache).run(spec,
                                                    {&store, false, spec.shard(0, 2)});

    // The final progress frame is exact: every owned cell durable.
    const std::optional<runtime::shard_progress> progress =
        load_progress(store, digest, 2, 0);
    ASSERT_TRUE(progress.has_value());
    EXPECT_EQ(progress->spec_digest, digest);
    EXPECT_EQ(progress->shard_count, 2u);
    EXPECT_EQ(progress->shard_index, 0u);
    EXPECT_EQ(progress->cells_owned, 4u);
    EXPECT_EQ(progress->cells_done, 4u);

    // And agrees with the completion manifest published after it.
    const std::optional<std::string> manifest_frame = store.load(
        storage::manifest_bucket, runtime::shard_manifest_digest(digest, 2, 0));
    ASSERT_TRUE(manifest_frame.has_value());
    const runtime::shard_manifest manifest =
        storage::decode_shard_manifest(*manifest_frame);
    EXPECT_EQ(manifest.cell_count, progress->cells_done);

    // The unstarted shard has no frames at all.
    EXPECT_FALSE(load_progress(store, digest, 2, 1).has_value());
}

TEST(obs_status, status_view_tracks_a_fleet_from_partial_to_complete)
{
    const runtime::sweep_spec spec = tiny_spec();
    const std::uint64_t digest = spec.digest();
    const std::string digest_text = std::to_string(digest);
    temp_dir dir;
    storage::artifact_store store(dir.path);
    runtime::thread_pool pool(2);

    {
        runtime::experiment_cache cache;
        (void)runtime::sweep_scheduler(pool, cache)
            .run(spec, {&store, false, spec.shard(0, 2)});
    }
    const std::string partial = runtime::render_store_status(store);
    EXPECT_NE(partial.find("sweep " + digest_text + ": 2 shards, 6 cells"),
              std::string::npos)
        << partial;
    EXPECT_NE(partial.find("shard 0/2: 4/4 (100.0%) complete"), std::string::npos)
        << partial;
    EXPECT_NE(partial.find("shard 1/2: no progress recorded"), std::string::npos)
        << partial;
    // The layout's total keeps the denominator honest: 4 of 6, not 4 of 4.
    EXPECT_NE(partial.find("total: 4/6 (66.7%)"), std::string::npos) << partial;
    EXPECT_EQ(partial.find("total: 4/6 (100.0%)"), std::string::npos) << partial;

    {
        runtime::experiment_cache cache;
        (void)runtime::sweep_scheduler(pool, cache)
            .run(spec, {&store, false, spec.shard(1, 2)});
    }
    const std::string complete = runtime::render_store_status(store);
    EXPECT_NE(complete.find("shard 0/2: 4/4 (100.0%) complete"), std::string::npos)
        << complete;
    EXPECT_NE(complete.find("shard 1/2: 2/2 (100.0%) complete"), std::string::npos)
        << complete;
    EXPECT_NE(complete.find("total: 6/6 (100.0%)"), std::string::npos) << complete;
}

TEST(obs_status, unsharded_store_run_publishes_as_shard_zero_of_one)
{
    const runtime::sweep_spec spec = tiny_spec();
    const std::uint64_t digest = spec.digest();
    temp_dir dir;
    storage::artifact_store store(dir.path);
    runtime::thread_pool pool(2);

    runtime::experiment_cache cache;
    (void)runtime::sweep_scheduler(pool, cache).run(spec, {&store, false});

    const std::optional<runtime::shard_progress> progress =
        load_progress(store, digest, 1, 0);
    ASSERT_TRUE(progress.has_value());
    EXPECT_EQ(progress->cells_owned, 6u);
    EXPECT_EQ(progress->cells_done, 6u);

    const std::string status = runtime::render_store_status(store);
    EXPECT_NE(status.find("sweep " + std::to_string(digest) + ": 1 shard"),
              std::string::npos)
        << status;
    EXPECT_NE(status.find("shard 0/1: 6/6 (100.0%)"), std::string::npos) << status;
    EXPECT_NE(status.find("total: 6/6 (100.0%)"), std::string::npos) << status;
}

TEST(obs_status, sweep_json_meta_rides_on_one_strippable_line)
{
    // The meta contract: ONE extra line, so determinism consumers recover
    // the unstamped document with `grep -v '"meta"'`.
    runtime::sweep_result result;
    std::ostringstream bare;
    runtime::write_sweep_json(result, bare);

    runtime::sweep_json_meta meta = runtime::collect_sweep_json_meta();
    EXPECT_FALSE(meta.generated_utc.empty());
    EXPECT_GE(meta.hardware_concurrency, 1u);
    meta.git_describe = "v1.2.3-4-gabcdef0";
    std::ostringstream stamped;
    runtime::write_sweep_json(result, stamped, &meta);

    std::istringstream lines(stamped.str());
    std::string line;
    std::string stripped;
    std::size_t meta_lines = 0;
    while (std::getline(lines, line)) {
        if (line.find("\"meta\"") != std::string::npos) {
            ++meta_lines;
            EXPECT_NE(line.find("\"schema_version\": 1"), std::string::npos);
            EXPECT_NE(line.find("\"generated_utc\": \""), std::string::npos);
            EXPECT_NE(line.find("\"hostname\": \""), std::string::npos);
            EXPECT_NE(line.find("\"hardware_concurrency\": "), std::string::npos);
            EXPECT_NE(line.find("\"git_describe\": \"v1.2.3-4-gabcdef0\""),
                      std::string::npos);
            continue;
        }
        stripped += line + "\n";
    }
    EXPECT_EQ(meta_lines, 1u);
    EXPECT_EQ(stripped, bare.str());
}

TEST(obs_status, status_of_empty_store_reports_no_sweeps)
{
    temp_dir dir;
    const storage::artifact_store store(dir.path);
    EXPECT_EQ(runtime::render_store_status(store), "no sweeps recorded\n");
}

TEST(obs_status, store_list_enumerates_manifest_bucket_digests_sorted)
{
    temp_dir dir;
    storage::artifact_store store(dir.path);
    EXPECT_TRUE(store.list(storage::manifest_bucket).empty());

    const runtime::shard_progress progress{42, 1, 0, 3, 1};
    ASSERT_TRUE(store.store(storage::manifest_bucket,
                            runtime::shard_progress_digest(42, 1, 0),
                            storage::encode(progress)));
    ASSERT_TRUE(store.store(storage::manifest_bucket,
                            runtime::shard_layout_digest(42),
                            storage::encode(runtime::shard_manifest{42, 1, 1, 3})));
    const std::vector<std::uint64_t> digests = store.list(storage::manifest_bucket);
    ASSERT_EQ(digests.size(), 2u);
    EXPECT_LT(digests[0], digests[1]);
    // Other buckets are untouched.
    EXPECT_TRUE(store.list(storage::cell_bucket).empty());
}

} // namespace
