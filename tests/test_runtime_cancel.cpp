// Tests for the cooperative cancellation contract (util/cancellation +
// runtime re-exports): token/source semantics incl. parent->child
// propagation, the thread-pool task path (running tasks observe
// cooperatively, queued tasks drop without starting, post-shutdown
// external submit throws pool_stopped deterministically), the cache
// owner-cancel hand-off (waiters are never left parked), and the
// end-to-end guarantee that a cancelled construction publishes nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/cancel.h"
#include "runtime/experiment_cache.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"

namespace {

using namespace synts;
using runtime::cancel_source;
using runtime::cancel_token;
using runtime::operation_cancelled;
using runtime::thread_pool;

// --- token / source semantics -------------------------------------------

TEST(runtime_cancel, default_token_is_inert)
{
    const cancel_token token;
    EXPECT_FALSE(token.can_cancel());
    EXPECT_FALSE(token.cancelled());
    EXPECT_TRUE(token.reason().empty());
    EXPECT_NO_THROW(token.throw_if_cancelled());
}

TEST(runtime_cancel, source_cancels_exactly_once_and_preserves_reason)
{
    cancel_source source;
    const cancel_token token = source.token();
    EXPECT_TRUE(token.can_cancel());
    EXPECT_FALSE(token.cancelled());

    EXPECT_TRUE(source.cancel("first reason"));
    EXPECT_FALSE(source.cancel("second reason")); // already decided
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), "first reason");
    EXPECT_THROW(token.throw_if_cancelled(), operation_cancelled);
}

TEST(runtime_cancel, cancelling_parent_cascades_to_child)
{
    cancel_source parent;
    const cancel_source child(parent.token());
    const cancel_source grandchild(child.token());
    EXPECT_FALSE(grandchild.token().cancelled());

    EXPECT_TRUE(parent.cancel("sweep abandoned"));
    EXPECT_TRUE(child.token().cancelled());
    EXPECT_TRUE(grandchild.token().cancelled());
    EXPECT_EQ(grandchild.token().reason(), "sweep abandoned");
}

TEST(runtime_cancel, child_of_already_cancelled_parent_is_born_cancelled)
{
    cancel_source parent;
    (void)parent.cancel("too late");
    const cancel_source child(parent.token());
    EXPECT_TRUE(child.token().cancelled());
    EXPECT_EQ(child.token().reason(), "too late");
}

TEST(runtime_cancel, child_cancel_does_not_propagate_upward)
{
    cancel_source parent;
    cancel_source child(parent.token());
    EXPECT_TRUE(child.cancel());
    EXPECT_TRUE(child.token().cancelled());
    EXPECT_FALSE(parent.token().cancelled());
}

TEST(runtime_cancel, child_of_inert_token_is_an_independent_root)
{
    cancel_source child{cancel_token{}};
    EXPECT_TRUE(child.token().can_cancel());
    EXPECT_FALSE(child.token().cancelled());
    EXPECT_TRUE(child.cancel());
    EXPECT_TRUE(child.token().cancelled());
}

// --- thread-pool task path ----------------------------------------------

TEST(runtime_cancel, running_task_observes_cancel_cooperatively)
{
    thread_pool pool(2);
    std::atomic<bool> started{false};
    auto task = pool.submit(cancel_token{}, [&started](const cancel_token& token) {
        started.store(true);
        while (!token.cancelled()) {
            std::this_thread::yield();
        }
        token.throw_if_cancelled();
    });
    while (!started.load()) {
        std::this_thread::yield();
    }
    EXPECT_TRUE(task.try_cancel("demand needs the worker"));
    EXPECT_THROW(task.get(), operation_cancelled);
    EXPECT_EQ(pool.dropped_count(), 0u); // it ran; it was not dropped
}

TEST(runtime_cancel, queued_task_cancelled_before_start_is_dropped)
{
    thread_pool pool(1);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::atomic<bool> ran{false};

    // Occupy the only worker so the cancellable task stays queued.
    auto blocker = pool.submit([open] { open.get(); });
    auto task = pool.submit(cancel_token{}, [&ran](const cancel_token&) {
        ran.store(true);
    });
    EXPECT_TRUE(task.try_cancel());
    gate.set_value();

    EXPECT_THROW(task.get(), operation_cancelled);
    blocker.get();
    EXPECT_FALSE(ran.load()); // the body never started
    EXPECT_EQ(pool.dropped_count(), 1u);
}

TEST(runtime_cancel, token_submit_without_token_parameter_still_works)
{
    thread_pool pool(2);
    auto task = pool.submit(cancel_token{}, [] { return 17; });
    EXPECT_EQ(task.get(), 17);
    EXPECT_TRUE(task.token().can_cancel());
}

TEST(runtime_cancel, task_token_links_under_the_passed_parent)
{
    thread_pool pool(2);
    cancel_source sweep;
    std::atomic<bool> started{false};
    auto task = pool.submit(sweep.token(), [&started](const cancel_token& token) {
        started.store(true);
        while (!token.cancelled()) {
            std::this_thread::yield();
        }
        token.throw_if_cancelled();
    });
    while (!started.load()) {
        std::this_thread::yield();
    }
    (void)sweep.cancel("whole sweep cancelled"); // parent, not the handle
    EXPECT_THROW(task.get(), operation_cancelled);
}

TEST(runtime_cancel, external_submit_after_shutdown_throws_pool_stopped)
{
    // Satellite pin: destruction began + external submit == deterministic
    // pool_stopped, never a silent drop or UB. A gated task holds the
    // drain so the destructor is reliably mid-shutdown while we probe.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    auto pool = std::make_unique<thread_pool>(1);
    thread_pool* raw = pool.get();
    (void)raw->submit([open] { open.get(); });

    std::thread destroyer([p = std::move(pool)]() mutable { p.reset(); });
    bool caught = false;
    for (int i = 0; i < 10000 && !caught; ++i) {
        try {
            (void)raw->submit([] {});
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        } catch (const runtime::pool_stopped&) {
            caught = true;
        }
    }
    gate.set_value();
    destroyer.join();
    EXPECT_TRUE(caught);
}

// --- cache owner-cancel hand-off ----------------------------------------

struct tiny_key {
    std::uint64_t id = 0;
    [[nodiscard]] std::uint64_t digest() const noexcept { return id * 0x9e3779b97f4a7c15ull; }
    bool operator==(const tiny_key&) const = default;
};

TEST(runtime_cancel, cancelled_owner_hands_off_to_inert_waiter)
{
    runtime::memo_tier<tiny_key, std::shared_ptr<int>> tier(1);
    cancel_source owner_source;
    std::promise<void> owner_inside;
    std::promise<void> owner_release;
    std::shared_future<void> release = owner_release.get_future().share();
    std::atomic<int> factory_runs{0};

    std::thread owner([&] {
        EXPECT_THROW(
            (void)tier.get_or_create(
                tiny_key{7},
                [&]() -> std::shared_ptr<int> {
                    factory_runs.fetch_add(1);
                    owner_inside.set_value();
                    release.get();
                    owner_source.token().throw_if_cancelled();
                    return std::make_shared<int>(1);
                },
                nullptr, owner_source.token()),
            operation_cancelled);
    });
    owner_inside.get_future().get(); // owner is mid-construction

    std::thread waiter([&] {
        // Inert token: the pre-cancellation demand path. It must NOT stay
        // parked when the owner unwinds -- it retries and takes over.
        auto value = tier.get_or_create(tiny_key{7}, [&]() -> std::shared_ptr<int> {
            factory_runs.fetch_add(1);
            return std::make_shared<int>(2);
        });
        EXPECT_EQ(*value, 2);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10)); // let it park
    (void)owner_source.cancel("speculation preempted");
    owner_release.set_value();
    owner.join();
    waiter.join();
    EXPECT_EQ(factory_runs.load(), 2); // hand-off restarted the factory
    EXPECT_EQ(tier.size(), 1u);        // and the retry published
}

TEST(runtime_cancel, cancellable_waiter_unblocks_on_its_own_cancel)
{
    runtime::memo_tier<tiny_key, std::shared_ptr<int>> tier(1);
    std::promise<void> owner_inside;
    std::promise<void> owner_release;
    std::shared_future<void> release = owner_release.get_future().share();

    std::thread owner([&] {
        auto value = tier.get_or_create(tiny_key{3}, [&]() -> std::shared_ptr<int> {
            owner_inside.set_value();
            release.get();
            return std::make_shared<int>(9);
        });
        EXPECT_EQ(*value, 9);
    });
    owner_inside.get_future().get();

    cancel_source waiter_source;
    std::thread waiter([&] {
        EXPECT_THROW((void)tier.get_or_create(
                         tiny_key{3},
                         [&]() -> std::shared_ptr<int> { return std::make_shared<int>(0); },
                         nullptr, waiter_source.token()),
                     operation_cancelled);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)waiter_source.cancel("caller gave up");
    waiter.join(); // must return despite the owner still being parked
    owner_release.set_value();
    owner.join();
}

// --- end-to-end: cancelled construction publishes nothing ---------------

TEST(runtime_cancel, precancelled_cache_get_publishes_nothing_then_demand_succeeds)
{
    runtime::experiment_cache cache;
    cancel_source source;
    (void)source.cancel("cancelled before start");

    EXPECT_THROW((void)cache.get_or_create(workload::benchmark_id::radix,
                                           circuit::pipe_stage::decode, {}, nullptr,
                                           nullptr, source.token()),
                 operation_cancelled);
    EXPECT_FALSE(cache.contains(workload::benchmark_id::radix,
                                circuit::pipe_stage::decode));
    EXPECT_FALSE(cache.contains_program(workload::benchmark_id::radix));

    // Demand with an inert token finds a clean slate and constructs.
    const auto experiment = cache.get_or_create(workload::benchmark_id::radix,
                                                circuit::pipe_stage::decode);
    EXPECT_NE(experiment, nullptr);
    EXPECT_TRUE(cache.contains(workload::benchmark_id::radix,
                               circuit::pipe_stage::decode));
}

TEST(runtime_cancel, precancelled_sweep_throws_and_attests_no_result)
{
    runtime::sweep_spec spec;
    spec.benchmarks = {workload::benchmark_id::radix};
    spec.stages = {circuit::pipe_stage::decode};
    spec.policies = {core::policy_kind::synts_offline};

    thread_pool pool(2);
    runtime::experiment_cache cache;
    const runtime::sweep_scheduler scheduler(pool, cache);

    cancel_source source;
    (void)source.cancel("operator abort");
    runtime::sweep_options options;
    options.cancel = source.token();
    EXPECT_THROW((void)scheduler.run(spec, options), operation_cancelled);
    EXPECT_EQ(pool.dropped_count(), spec.expanded_pairs().size());
}

} // namespace
