// Tests for obs/trace: span recording semantics (disabled = inert, lazy
// names unevaluated), per-thread buffers with chunk overflow, concurrent
// writers (the TSan CI job runs this suite), and the Chrome trace-event
// JSON shape Perfetto expects.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace {

using namespace synts;
using obs::trace_recorder;
using obs::trace_span;

TEST(obs_trace, disabled_recorder_spans_are_inert)
{
    trace_recorder recorder;
    ASSERT_FALSE(recorder.enabled());
    bool name_evaluated = false;
    {
        const trace_span span(recorder, [&]() -> std::string {
            name_evaluated = true;
            return "never";
        });
    }
    EXPECT_FALSE(name_evaluated);
    EXPECT_EQ(recorder.event_count(), 0u);

    // Enabling mid-span must not retroactively record the span: the
    // decision is taken at construction.
    recorder.set_enabled(false);
    {
        const trace_span span(recorder, "late");
        recorder.set_enabled(true);
    }
    EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(obs_trace, spans_record_name_and_monotonic_bounds)
{
    trace_recorder recorder;
    recorder.set_enabled(true);
    {
        const trace_span outer(recorder, "outer");
        const trace_span inner(recorder,
                               [] { return std::string("inner") + ":formatted"; });
    }
    recorder.instant_event("mark");

    const std::vector<trace_recorder::event> events = recorder.events();
    ASSERT_EQ(events.size(), 3u);
    // Spans close inner-first (destruction order).
    EXPECT_EQ(events[0].name, "inner:formatted");
    EXPECT_EQ(events[1].name, "outer");
    EXPECT_EQ(events[2].name, "mark");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_EQ(events[2].phase, 'i');
    EXPECT_EQ(events[2].dur_ns, 0u);
    // Nesting: outer starts no later than inner and ends no earlier.
    EXPECT_LE(events[1].ts_ns, events[0].ts_ns);
    EXPECT_GE(events[1].ts_ns + events[1].dur_ns, events[0].ts_ns + events[0].dur_ns);
    // All on the same (first) thread.
    EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(obs_trace, chunk_overflow_preserves_every_event_in_order)
{
    trace_recorder recorder;
    recorder.set_enabled(true);
    constexpr std::size_t count = 3000; // > 2 chunks of 1024
    for (std::size_t i = 0; i < count; ++i) {
        recorder.instant_event("e" + std::to_string(i), i);
    }
    ASSERT_EQ(recorder.event_count(), count);
    const std::vector<trace_recorder::event> events = recorder.events();
    ASSERT_EQ(events.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(events[i].name, "e" + std::to_string(i));
        EXPECT_EQ(events[i].ts_ns, i);
    }
}

TEST(obs_trace, threads_get_distinct_buffers_and_ids)
{
    trace_recorder recorder;
    recorder.set_enabled(true);
    constexpr int thread_count = 4;
    constexpr std::size_t events_per_thread = 1500; // forces chunk overflow
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (int t = 0; t < thread_count; ++t) {
        threads.emplace_back([&recorder] {
            for (std::size_t i = 0; i < events_per_thread; ++i) {
                const trace_span span(recorder, "work");
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    const std::vector<trace_recorder::event> events = recorder.events();
    ASSERT_EQ(events.size(), thread_count * events_per_thread);

    // Thread-major snapshot: per-tid counts are exact and per-tid
    // timestamps are monotonic (steady clock, single writer per buffer).
    std::vector<std::size_t> per_tid(thread_count, 0);
    std::vector<std::uint64_t> last_ts(thread_count, 0);
    for (const trace_recorder::event& e : events) {
        ASSERT_LT(e.tid, static_cast<std::uint32_t>(thread_count));
        ++per_tid[e.tid];
        EXPECT_GE(e.ts_ns, last_ts[e.tid]);
        last_ts[e.tid] = e.ts_ns;
    }
    for (const std::size_t count : per_tid) {
        EXPECT_EQ(count, events_per_thread);
    }
}

TEST(obs_trace, chrome_trace_json_shape)
{
    trace_recorder recorder;
    recorder.set_enabled(true);
    recorder.complete_event("cell \"quoted\"", 1500, 2500);
    recorder.instant_event("mark", 4000);
    recorder.set_enabled(false);

    std::ostringstream out;
    recorder.write_chrome_trace(out);
    const std::string json = out.str();

    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    // ns -> us with three decimals; name escaped.
    EXPECT_NE(json.find("\"name\": \"cell \\\"quoted\\\"\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 1.500"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 2.500"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 4.000"), std::string::npos);
    // Every event carries pid/tid/cat.
    EXPECT_NE(json.find("\"pid\": "), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"synts\""), std::string::npos);
}

TEST(obs_trace, two_recorders_do_not_share_tls_bindings)
{
    // The TLS binding cache is keyed by recorder id: events must land in
    // the recorder they were issued on, even when one thread alternates.
    trace_recorder first;
    trace_recorder second;
    first.set_enabled(true);
    second.set_enabled(true);
    first.instant_event("a");
    second.instant_event("b");
    first.instant_event("c");
    EXPECT_EQ(first.event_count(), 2u);
    EXPECT_EQ(second.event_count(), 1u);
    EXPECT_EQ(second.events()[0].name, "b");
}

} // namespace
