// Tests for energy/energy_model (Eqs. 4.1-4.3) and energy/synthesis_report
// (Section 6.3 overheads).

#include <gtest/gtest.h>

#include "circuit/netlist_builder.h"
#include "energy/energy_model.h"
#include "energy/synthesis_report.h"

namespace {

using namespace synts::energy;

TEST(energy_model, effective_cpi_identity)
{
    EXPECT_DOUBLE_EQ(effective_cpi(0.1, 1.5, 5), 0.1 * 5 + 1.5);
    EXPECT_DOUBLE_EQ(effective_cpi(0.0, 2.0, 5), 2.0);
}

TEST(energy_model, spi_equation_4_1)
{
    // SPI = t_clk (p C + CPI)
    EXPECT_DOUBLE_EQ(seconds_per_instruction(100.0, 0.02, 1.2, 5),
                     100.0 * (0.02 * 5 + 1.2));
}

TEST(energy_model, thread_time_scales_with_instructions)
{
    const double one = thread_execution_time(1, 100.0, 0.0, 1.0, 5);
    const double thousand = thread_execution_time(1000, 100.0, 0.0, 1.0, 5);
    EXPECT_DOUBLE_EQ(thousand, 1000.0 * one);
}

TEST(energy_model, energy_equation_4_3)
{
    energy_params params;
    params.alpha_switching_cap = 2.0;
    params.error_penalty_cycles = 5;
    // en = alpha V^2 N (p C + CPI)
    EXPECT_DOUBLE_EQ(thread_energy(params, 0.9, 1000, 0.01, 1.5),
                     2.0 * 0.81 * 1000.0 * (0.01 * 5 + 1.5));
}

TEST(energy_model, energy_quadratic_in_voltage)
{
    energy_params params;
    const double high = thread_energy(params, 1.0, 100, 0.0, 1.0);
    const double low = thread_energy(params, 0.5, 100, 0.0, 1.0);
    EXPECT_NEAR(high / low, 4.0, 1e-12);
}

TEST(energy_model, errors_increase_both_time_and_energy)
{
    energy_params params;
    EXPECT_GT(thread_execution_time(100, 10.0, 0.1, 1.0, 5),
              thread_execution_time(100, 10.0, 0.0, 1.0, 5));
    EXPECT_GT(thread_energy(params, 1.0, 100, 0.1, 1.0),
              thread_energy(params, 1.0, 100, 0.0, 1.0));
}

TEST(energy_model, barrier_time_is_max)
{
    const std::vector<double> times = {3.0, 9.0, 7.0};
    EXPECT_DOUBLE_EQ(barrier_execution_time(times), 9.0);
    EXPECT_DOUBLE_EQ(barrier_execution_time({}), 0.0);
}

TEST(energy_model, edp)
{
    EXPECT_DOUBLE_EQ(energy_delay_product(3.0, 4.0), 12.0);
}

class synthesis_fixture : public ::testing::Test {
protected:
    synthesis_fixture()
        : lib(synts::circuit::cell_library::standard_22nm()),
          decode(synts::circuit::build_decode_stage()),
          simple(synts::circuit::build_simple_alu()),
          complex(synts::circuit::build_complex_alu())
    {
        stages = {&decode.nl, &simple.nl, &complex.nl};
    }

    synts::circuit::cell_library lib;
    synts::circuit::stage_netlist decode;
    synts::circuit::stage_netlist simple;
    synts::circuit::stage_netlist complex;
    std::array<const synts::circuit::netlist*, 3> stages{};
};

TEST_F(synthesis_fixture, blocks_inventory_scales_with_tsr_levels)
{
    const auto blocks6 = synts_online_blocks(6);
    const auto blocks12 = synts_online_blocks(12);
    std::size_t dff6 = 0;
    std::size_t dff12 = 0;
    for (const auto& b : blocks6) {
        dff6 += b.dff_count;
    }
    for (const auto& b : blocks12) {
        dff12 += b.dff_count;
    }
    EXPECT_GT(dff12, dff6);
}

TEST_F(synthesis_fixture, netlist_cost_positive_and_additive)
{
    const synthesis_estimator estimator(lib);
    const block_cost c1 = estimator.cost_of_netlist(decode.nl);
    EXPECT_GT(c1.area_um2, 0.0);
    EXPECT_GT(c1.power_uw, 0.0);
    EXPECT_NEAR(c1.area_um2, decode.nl.total_area_um2(lib), 1e-9);
}

TEST_F(synthesis_fixture, core_reference_scales)
{
    const synthesis_estimator estimator(lib);
    const core_reference small = estimator.make_core_reference(stages, 1.0);
    const core_reference full = estimator.make_core_reference(stages, 14.0);
    EXPECT_NEAR(full.area_um2 / small.area_um2, 14.0, 1e-9);
}

TEST_F(synthesis_fixture, overhead_close_to_paper_section_6_3)
{
    const overhead_report report = estimate_synts_overhead(lib, stages, 6);
    // Paper: ~3.41% power, ~2.7% area. Our bottom-up accounting must land
    // in the same small-percentage regime.
    EXPECT_GT(report.power_percent, 0.5);
    EXPECT_LT(report.power_percent, 8.0);
    EXPECT_GT(report.area_percent, 0.5);
    EXPECT_LT(report.area_percent, 8.0);
    // Area overhead is smaller than power overhead (counters toggle every
    // cycle while the core average activity is lower) -- matching the
    // paper's ordering is not required, but both must be nonzero.
    EXPECT_GT(report.core.area_um2, report.synts_additions.area_um2);
}

} // namespace
