// Tests for arch/trace and arch/multicore: barrier structure and profiling.

#include <gtest/gtest.h>

#include "arch/multicore.h"

namespace {

using namespace synts::arch;

thread_trace make_trace(std::initializer_list<std::size_t> interval_sizes)
{
    thread_trace trace;
    std::size_t total = 0;
    for (const std::size_t n : interval_sizes) {
        for (std::size_t i = 0; i < n; ++i) {
            micro_op op;
            op.cls = op_class::int_add;
            trace.ops.push_back(op);
        }
        total += n;
        trace.barrier_points.push_back(total);
    }
    return trace;
}

TEST(thread_trace, interval_extraction)
{
    const thread_trace trace = make_trace({3, 5, 2});
    EXPECT_EQ(trace.interval_count(), 3u);
    EXPECT_EQ(trace.interval(0).size(), 3u);
    EXPECT_EQ(trace.interval(1).size(), 5u);
    EXPECT_EQ(trace.interval(2).size(), 2u);
    EXPECT_THROW((void)trace.interval(3), std::out_of_range);
}

TEST(thread_trace, validate_accepts_well_formed)
{
    EXPECT_NO_THROW(make_trace({3, 5}).validate());
}

TEST(thread_trace, validate_rejects_non_increasing_points)
{
    thread_trace trace = make_trace({3, 5});
    trace.barrier_points = {3, 3};
    EXPECT_THROW(trace.validate(), std::logic_error);
}

TEST(thread_trace, validate_rejects_trailing_ops)
{
    thread_trace trace = make_trace({3, 5});
    trace.barrier_points.back() = 6; // trace does not end at a barrier
    EXPECT_THROW(trace.validate(), std::logic_error);
}

TEST(program_trace, interval_count_must_agree)
{
    program_trace program;
    program.threads.push_back(make_trace({3, 4}));
    program.threads.push_back(make_trace({5}));
    EXPECT_THROW(program.validate(), std::logic_error);
}

TEST(multicore_profiler, per_interval_instruction_counts)
{
    program_trace program;
    program.threads.push_back(make_trace({100, 200}));
    program.threads.push_back(make_trace({150, 150}));

    multicore_profiler profiler(core_config{});
    const auto profiles = profiler.profile(program);
    ASSERT_EQ(profiles.size(), 2u);
    ASSERT_EQ(profiles[0].size(), 2u);
    EXPECT_EQ(profiles[0][0].instruction_count, 100u);
    EXPECT_EQ(profiles[0][1].instruction_count, 200u);
    EXPECT_EQ(profiles[1][0].instruction_count, 150u);
    for (const auto& thread : profiles) {
        for (const auto& interval : thread) {
            EXPECT_GE(interval.cpi_base, 1.0);
        }
    }
}

TEST(barrier_timeline, max_idle_and_critical)
{
    const std::vector<double> times = {10.0, 30.0, 20.0};
    const barrier_timeline timeline = compute_barrier_timeline(times);
    EXPECT_DOUBLE_EQ(timeline.barrier_time, 30.0);
    EXPECT_EQ(timeline.critical_thread, 1u);
    EXPECT_DOUBLE_EQ(timeline.total_idle, 20.0 + 0.0 + 10.0);
}

TEST(barrier_timeline, balanced_threads_have_no_idle)
{
    const std::vector<double> times = {25.0, 25.0, 25.0, 25.0};
    const barrier_timeline timeline = compute_barrier_timeline(times);
    EXPECT_DOUBLE_EQ(timeline.total_idle, 0.0);
}

TEST(barrier_timeline, empty_is_safe)
{
    const barrier_timeline timeline = compute_barrier_timeline({});
    EXPECT_DOUBLE_EQ(timeline.barrier_time, 0.0);
}

} // namespace
