// Tests for runtime/experiment_cache: hit/miss accounting, identity of the
// served instance, bit-identical results from cached vs freshly built
// experiments, config-digest keying, single construction under concurrent
// access, and the constructor-failure retry path.

#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "runtime/experiment_cache.h"
#include "runtime/thread_pool.h"

namespace {

using namespace synts;
using runtime::experiment_cache;

constexpr auto kBenchmark = workload::benchmark_id::radix;
constexpr auto kStage = circuit::pipe_stage::simple_alu;

TEST(runtime_cache, miss_then_hits_serve_the_same_instance)
{
    experiment_cache cache;
    const auto first = cache.get_or_create(kBenchmark, kStage);
    const auto second = cache.get_or_create(kBenchmark, kStage);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.miss_count(), 1u);
    EXPECT_EQ(cache.hit_count(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(runtime_cache, distinct_keys_get_distinct_entries)
{
    experiment_cache cache;
    const auto a = cache.get_or_create(kBenchmark, kStage);
    const auto b = cache.get_or_create(kBenchmark, circuit::pipe_stage::decode);
    core::experiment_config reseeded;
    reseeded.seed = 43;
    const auto c = cache.get_or_create(kBenchmark, kStage, reseeded);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.miss_count(), 3u);
    EXPECT_EQ(cache.hit_count(), 0u);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(runtime_cache, config_digest_tracks_every_field)
{
    const core::experiment_config base;
    EXPECT_EQ(base.digest(), core::experiment_config{}.digest());

    core::experiment_config changed = base;
    changed.seed = 7;
    EXPECT_NE(changed.digest(), base.digest());

    changed = base;
    changed.thread_count = 8;
    EXPECT_NE(changed.digest(), base.digest());

    changed = base;
    changed.sampling.sample_fraction = 0.2;
    EXPECT_NE(changed.digest(), base.digest());

    changed = base;
    changed.characterization.histogram_bins = 256;
    EXPECT_NE(changed.digest(), base.digest());

    changed = base;
    changed.characterization.core.dcache.miss_penalty_cycles = 30;
    EXPECT_NE(changed.digest(), base.digest());

    changed = base;
    changed.params.leakage_power = 1e-6;
    EXPECT_NE(changed.digest(), base.digest());

    changed = base;
    changed.voltage_class_spread = 0.0;
    EXPECT_NE(changed.digest(), base.digest());
}

TEST(runtime_cache, cached_experiment_matches_fresh_construction_bit_for_bit)
{
    experiment_cache cache;
    const auto cached = cache.get_or_create(kBenchmark, kStage);
    const core::benchmark_experiment fresh(kBenchmark, kStage, {});

    const double theta = fresh.equal_weight_theta();
    EXPECT_EQ(cached->equal_weight_theta(), theta);

    for (const core::policy_kind kind :
         {core::policy_kind::synts_offline, core::policy_kind::synts_online}) {
        const auto from_cache = cached->run_policy(kind, theta);
        const auto from_fresh = fresh.run_policy(kind, theta);
        ASSERT_EQ(from_cache.intervals.size(), from_fresh.intervals.size());
        EXPECT_EQ(from_cache.sum.energy, from_fresh.sum.energy);
        EXPECT_EQ(from_cache.sum.time_ps, from_fresh.sum.time_ps);
        for (std::size_t k = 0; k < from_cache.intervals.size(); ++k) {
            EXPECT_EQ(from_cache.intervals[k].energy, from_fresh.intervals[k].energy);
            EXPECT_EQ(from_cache.intervals[k].time_ps, from_fresh.intervals[k].time_ps);
        }
    }
}

TEST(runtime_cache, concurrent_get_or_create_constructs_once)
{
    experiment_cache cache;
    runtime::thread_pool pool(4);
    constexpr std::size_t callers = 8;
    std::vector<std::future<experiment_cache::experiment_ptr>> futures;
    futures.reserve(callers);
    for (std::size_t i = 0; i < callers; ++i) {
        futures.push_back(pool.submit(
            [&cache] { return cache.get_or_create(kBenchmark, kStage); }));
    }
    std::vector<experiment_cache::experiment_ptr> served;
    served.reserve(callers);
    for (auto& f : futures) {
        served.push_back(f.get());
    }
    for (const auto& ptr : served) {
        EXPECT_EQ(ptr.get(), served.front().get());
    }
    EXPECT_EQ(cache.miss_count(), 1u);
    EXPECT_EQ(cache.hit_count(), callers - 1);
}

TEST(runtime_cache, constructor_failure_is_rethrown_and_retryable)
{
    experiment_cache cache;
    core::experiment_config broken;
    broken.thread_count = 0; // make_profile rejects this
    EXPECT_THROW((void)cache.get_or_create(kBenchmark, kStage, broken),
                 std::invalid_argument);
    EXPECT_EQ(cache.size(), 0u); // failed entry dropped
    EXPECT_THROW((void)cache.get_or_create(kBenchmark, kStage, broken),
                 std::invalid_argument);
    EXPECT_EQ(cache.miss_count(), 2u); // both calls attempted construction
}

TEST(runtime_cache, clear_forgets_entries)
{
    experiment_cache cache;
    (void)cache.get_or_create(kBenchmark, kStage);
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    (void)cache.get_or_create(kBenchmark, kStage);
    EXPECT_EQ(cache.miss_count(), 2u);
}

TEST(runtime_cache, process_cache_is_a_singleton)
{
    EXPECT_EQ(&experiment_cache::process_cache(), &experiment_cache::process_cache());
}

} // namespace
