// Tests for the metrics sampler: exact ring wraparound/drop-oldest
// semantics, series expansion (counter/gauge/histogram -> flat series),
// derived rates and interval hit-rates, the JSONL timeline (parsed back
// through util/json -- the emitter and the reader must agree), global tick
// indices surviving wraparound, and -- under TSan -- writer threads
// hammering the registry while a fast sampler ticks concurrently.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "util/json.h"

namespace {

using namespace synts;

obs::sampler_config config_of(std::size_t capacity,
                              std::chrono::milliseconds period = std::chrono::milliseconds(100))
{
    obs::sampler_config config;
    config.capacity = capacity;
    config.period = period;
    return config;
}

TEST(obs_sampler, ring_keeps_newest_window_and_counts_drops)
{
    obs::sample_ring ring(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);

    for (std::uint64_t i = 0; i < 10; ++i) {
        ring.push(obs::sample_point{i, static_cast<double>(i * 10)});
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);

    // Oldest-to-newest: exactly the last four pushes, in push order.
    const std::vector<obs::sample_point> points = ring.points();
    ASSERT_EQ(points.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(points[i].t_ns, 6u + i);
        EXPECT_EQ(points[i].value, static_cast<double>((6 + i) * 10));
    }
    ASSERT_TRUE(ring.back().has_value());
    EXPECT_EQ(ring.back()->t_ns, 9u);
}

TEST(obs_sampler, ring_zero_capacity_is_coerced_to_one)
{
    obs::sample_ring ring(0);
    EXPECT_EQ(ring.capacity(), 1u);
    ring.push(obs::sample_point{1, 1.0});
    ring.push(obs::sample_point{2, 2.0});
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.dropped(), 1u);
    EXPECT_EQ(ring.back()->value, 2.0);
}

TEST(obs_sampler, sample_now_expands_instruments_into_flat_series)
{
    obs::metrics_registry registry;
    registry.counter_at("sampler.cells").add(5);
    registry.gauge_at("sampler.inflight").set(3);
    obs::latency_histogram& hist = registry.histogram_at("sampler.lat_ns");
    for (int i = 0; i < 100; ++i) {
        hist.record(1000);
    }

    obs::sampler sampler(registry, config_of(8));
    sampler.sample_now();
    EXPECT_EQ(sampler.tick_count(), 1u);

    const std::vector<std::string> names = sampler.series_names();
    const auto has = [&](const std::string& name) {
        return std::find(names.begin(), names.end(), name) != names.end();
    };
    EXPECT_TRUE(has("sampler.cells"));
    EXPECT_TRUE(has("sampler.inflight"));
    EXPECT_TRUE(has("sampler.lat_ns.count"));
    EXPECT_TRUE(has("sampler.lat_ns.p50"));
    EXPECT_TRUE(has("sampler.lat_ns.p99"));

    const auto cells = sampler.series("sampler.cells");
    ASSERT_TRUE(cells.has_value());
    EXPECT_EQ(cells->kind, obs::metric_sample::kind::counter);
    ASSERT_EQ(cells->points.size(), 1u);
    EXPECT_EQ(cells->points[0].value, 5.0);

    const auto count = sampler.series("sampler.lat_ns.count");
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(count->points[0].value, 100.0);

    EXPECT_FALSE(sampler.series("sampler.absent").has_value());
}

TEST(obs_sampler, rate_per_second_differences_the_last_two_points)
{
    obs::metrics_registry registry;
    obs::counter& cells = registry.counter_at("rate.cells");
    obs::sampler sampler(registry, config_of(8));

    cells.add(10);
    sampler.sample_now();
    // One point: no interval to difference yet.
    EXPECT_FALSE(sampler.rate_per_second("rate.cells").has_value());

    cells.add(10);
    sampler.sample_now();
    const std::optional<double> rate = sampler.rate_per_second("rate.cells");
    ASSERT_TRUE(rate.has_value());
    // 10 new cells over a sub-second interval: a large positive rate whose
    // exact value depends on the wall clock; sign and floor are invariant.
    EXPECT_GT(*rate, 0.0);

    EXPECT_FALSE(sampler.rate_per_second("rate.absent").has_value());
}

TEST(obs_sampler, interval_hit_rate_uses_only_the_last_interval)
{
    obs::metrics_registry registry;
    obs::counter& hits = registry.counter_at("tier.hits");
    obs::counter& misses = registry.counter_at("tier.misses");
    obs::sampler sampler(registry, config_of(8));

    // Pre-history the last interval must NOT see: 90 hits, 0 misses.
    hits.add(90);
    sampler.sample_now();
    EXPECT_FALSE(sampler.interval_hit_rate("tier").has_value()); // one point

    hits.add(3);
    misses.add(1);
    sampler.sample_now();
    const std::optional<double> rate = sampler.interval_hit_rate("tier");
    ASSERT_TRUE(rate.has_value());
    EXPECT_DOUBLE_EQ(*rate, 0.75); // 3 / (3 + 1), not 93 / 94

    // A quiet interval (no lookups) has no defined hit rate.
    sampler.sample_now();
    EXPECT_FALSE(sampler.interval_hit_rate("tier").has_value());
    EXPECT_FALSE(sampler.interval_hit_rate("absent").has_value());
}

TEST(obs_sampler, timeline_jsonl_round_trips_through_the_json_reader)
{
    obs::metrics_registry registry;
    obs::counter& cells = registry.counter_at("tl.cells");
    obs::sampler sampler(registry, config_of(8));

    cells.add(2);
    sampler.sample_now();
    cells.add(3);
    sampler.sample_now();

    std::ostringstream out;
    sampler.write_timeline_jsonl(out);
    std::istringstream lines(out.str());
    std::string line;
    std::vector<util::json_value> frames;
    while (std::getline(lines, line)) {
        frames.push_back(util::json_value::parse(line));
    }
    ASSERT_EQ(frames.size(), 2u);

    EXPECT_EQ(frames[0].find("tick")->as_number(), 0.0);
    EXPECT_EQ(frames[1].find("tick")->as_number(), 1.0);
    EXPECT_LT(frames[0].find("t_ns")->as_number(), frames[1].find("t_ns")->as_number());

    EXPECT_EQ(frames[0].find("metrics")->find("tl.cells")->as_number(), 2.0);
    EXPECT_EQ(frames[1].find("metrics")->find("tl.cells")->as_number(), 5.0);

    // The first tick has no previous point to difference against.
    EXPECT_EQ(frames[0].find("rates_per_s")->find("tl.cells"), nullptr);
    const util::json_value* rate = frames[1].find("rates_per_s")->find("tl.cells");
    ASSERT_NE(rate, nullptr);
    EXPECT_GT(rate->as_number(), 0.0);
}

TEST(obs_sampler, timeline_keeps_global_tick_indices_across_wraparound)
{
    obs::metrics_registry registry;
    obs::counter& cells = registry.counter_at("wrap.cells");
    obs::sampler sampler(registry, config_of(3));

    for (int i = 0; i < 5; ++i) {
        cells.add(1);
        sampler.sample_now();
    }
    EXPECT_EQ(sampler.tick_count(), 5u);

    const auto view = sampler.series("wrap.cells");
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->points.size(), 3u);
    EXPECT_EQ(view->dropped, 2u);

    std::ostringstream out;
    sampler.write_timeline_jsonl(out);
    std::istringstream lines(out.str());
    std::string line;
    std::vector<double> ticks;
    std::vector<double> values;
    while (std::getline(lines, line)) {
        const util::json_value frame = util::json_value::parse(line);
        ticks.push_back(frame.find("tick")->as_number());
        values.push_back(frame.find("metrics")->find("wrap.cells")->as_number());
    }
    // Ticks 0 and 1 were dropped; survivors keep their TRUE indices.
    EXPECT_EQ(ticks, (std::vector<double>{2.0, 3.0, 4.0}));
    EXPECT_EQ(values, (std::vector<double>{3.0, 4.0, 5.0}));
}

TEST(obs_sampler, stop_without_start_still_takes_the_final_tick)
{
    obs::metrics_registry registry;
    registry.counter_at("final.cells").add(7);
    obs::sampler sampler(registry, config_of(4));
    sampler.stop();
    EXPECT_EQ(sampler.tick_count(), 1u);
    const auto view = sampler.series("final.cells");
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->points.back().value, 7.0);
    sampler.stop(); // idempotent: one more guaranteed tick per call is fine
    EXPECT_EQ(sampler.tick_count(), 2u);
}

// The TSan target: writer threads hammer registry instruments (relaxed
// atomics) while the background sampler snapshots on a 1 ms period and a
// reader polls rates -- the snapshot-vs-writer and tick-vs-reader races the
// lock-light design claims to avoid must actually be clean.
TEST(obs_sampler, concurrent_writers_and_sampler_agree_on_totals)
{
    obs::metrics_registry registry;
    obs::counter& cells = registry.counter_at("stress.cells");
    obs::latency_histogram& lat = registry.histogram_at("stress.lat_ns");

    obs::sampler sampler(registry, config_of(128, std::chrono::milliseconds(1)));
    sampler.start();
    sampler.start(); // no-op when already running

    constexpr int writer_count = 4;
    constexpr std::uint64_t per_writer = 20'000;
    std::vector<std::thread> writers;
    writers.reserve(writer_count);
    for (int w = 0; w < writer_count; ++w) {
        writers.emplace_back([&] {
            for (std::uint64_t i = 0; i < per_writer; ++i) {
                cells.add(1);
                lat.record(100 + (i & 0xFF));
            }
        });
    }
    for (std::thread& writer : writers) {
        writer.join();
    }
    sampler.stop();

    EXPECT_GE(sampler.tick_count(), 1u);
    // The guaranteed final tick runs after every writer joined, so the last
    // point carries the exact totals.
    const auto view = sampler.series("stress.cells");
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->points.back().value,
              static_cast<double>(writer_count * per_writer));
    const auto count = sampler.series("stress.lat_ns.count");
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(count->points.back().value,
              static_cast<double>(writer_count * per_writer));
}

TEST(obs_openmetrics, exposition_covers_all_kinds_and_terminates)
{
    obs::metrics_registry registry;
    registry.counter_at("sweep.cells_computed").add(42);
    registry.gauge_at("pool.queue-depth").set(-3);
    obs::latency_histogram& hist = registry.histogram_at("cell.lat_ns");
    for (int i = 0; i < 100; ++i) {
        hist.record(1000);
    }

    const std::string text = obs::render_openmetrics(registry.snapshot());

    // Counter: sanitized name, `_total` sample, TYPE line.
    EXPECT_NE(text.find("# TYPE synts_sweep_cells_computed counter\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("synts_sweep_cells_computed_total 42\n"), std::string::npos);

    // Gauge: '-' sanitized to '_', signed level, no suffix.
    EXPECT_NE(text.find("# TYPE synts_pool_queue_depth gauge\n"), std::string::npos);
    EXPECT_NE(text.find("synts_pool_queue_depth -3\n"), std::string::npos);

    // Histogram: summary with quantile labels plus _count.
    EXPECT_NE(text.find("# TYPE synts_cell_lat_ns summary\n"), std::string::npos);
    EXPECT_NE(text.find("synts_cell_lat_ns{quantile=\"0.5\"} "), std::string::npos);
    EXPECT_NE(text.find("synts_cell_lat_ns{quantile=\"0.99\"} "), std::string::npos);
    EXPECT_NE(text.find("synts_cell_lat_ns_count 100\n"), std::string::npos);

    // OpenMetrics termination marker, exactly at the end.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

    // render_metrics dispatches prom to the same exposition.
    EXPECT_EQ(obs::render_metrics(registry.snapshot(), obs::metrics_format::prom),
              text);
}

} // namespace
