// Tests for core/config_space.

#include <gtest/gtest.h>

#include "circuit/voltage_model.h"
#include "core/config_space.h"

namespace {

using namespace synts::core;

TEST(config_space, default_tsr_levels_match_paper)
{
    const auto levels = config_space::default_tsr_levels();
    ASSERT_EQ(levels.size(), 6u);
    EXPECT_DOUBLE_EQ(levels.front(), 0.64);
    EXPECT_DOUBLE_EQ(levels.back(), 1.0);
    for (std::size_t k = 1; k < levels.size(); ++k) {
        EXPECT_GT(levels[k], levels[k - 1]);
    }
}

TEST(config_space, paper_grid_dimensions)
{
    const std::vector<double> tnom = {100, 113, 127, 139, 163, 221, 263};
    const config_space space = config_space::paper_grid(tnom);
    EXPECT_EQ(space.voltage_count(), 7u); // Q = 7 (Table 5.1)
    EXPECT_EQ(space.tsr_count(), 6u);     // S = 6 (Section 6.2)
    EXPECT_DOUBLE_EQ(space.voltage(0), 1.0);
    EXPECT_DOUBLE_EQ(space.tnom_ps(0), 100.0);
}

TEST(config_space, paper_grid_requires_matching_tnom)
{
    const std::vector<double> wrong = {100, 113};
    EXPECT_THROW((void)config_space::paper_grid(wrong), std::invalid_argument);
}

TEST(config_space, clock_period_is_r_times_tnom)
{
    const std::vector<double> tnom = {100, 113, 127, 139, 163, 221, 263};
    const config_space space = config_space::paper_grid(tnom);
    const thread_assignment a{2, 0}; // V = 0.86, r = 0.64
    EXPECT_DOUBLE_EQ(space.clock_period_ps(a), 0.64 * 127.0);
}

TEST(config_space, nominal_assignment_is_highest_voltage_r1)
{
    const std::vector<double> tnom = {100, 113, 127, 139, 163, 221, 263};
    const config_space space = config_space::paper_grid(tnom);
    const thread_assignment nominal = space.nominal_assignment();
    EXPECT_EQ(nominal.voltage_index, 0u);
    EXPECT_EQ(nominal.tsr_index, space.tsr_count() - 1);
    EXPECT_DOUBLE_EQ(space.clock_period_ps(nominal), 100.0);
}

TEST(config_space, validation_rules)
{
    EXPECT_THROW(config_space({}, {1.0}, {}), std::invalid_argument);
    EXPECT_THROW(config_space({1.0}, {0.8, 0.7, 1.0}, {100.0}), std::invalid_argument);
    EXPECT_THROW(config_space({1.0}, {0.8, 0.9}, {100.0}), std::invalid_argument);
    EXPECT_THROW(config_space({1.0}, {1.0}, {0.0}), std::invalid_argument);
    EXPECT_THROW(config_space({1.0, 0.9}, {1.0}, {100.0}), std::invalid_argument);
    EXPECT_NO_THROW(config_space({1.0, 0.9}, {0.8, 1.0}, {100.0, 120.0}));
}

} // namespace
