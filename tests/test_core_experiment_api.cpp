// Driver-level API tests for core/experiment: theta sweeps, predicted-N
// mode, and the edge cases the figure benches rely on. One shared fixture
// keeps the (heavyweight) characterization to a single run.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace {

using namespace synts;
using core::benchmark_experiment;
using core::experiment_config;
using core::policy_kind;

class barnes_experiment : public ::testing::Test {
protected:
    static void SetUpTestSuite()
    {
        core::experiment_config cfg;
        // gtest static-fixture idiom; TearDownTestSuite deletes it.
        experiment = new benchmark_experiment( // synts-lint: allow(naked-new)
            workload::benchmark_id::barnes,
                                              circuit::pipe_stage::simple_alu, cfg);
    }
    static void TearDownTestSuite()
    {
        delete experiment;
        experiment = nullptr;
    }
    static benchmark_experiment* experiment;
};

benchmark_experiment* barnes_experiment::experiment = nullptr;

TEST_F(barnes_experiment, make_solver_input_bounds)
{
    EXPECT_THROW((void)experiment->make_solver_input(99, 1.0), std::out_of_range);
    const auto input = experiment->make_solver_input(0, 1.0);
    EXPECT_EQ(input.thread_count(), 4u);
    EXPECT_NO_THROW(input.validate());
}

TEST_F(barnes_experiment, workloads_reflect_imbalance)
{
    // Thread 0 carries the most work per the calibrated profile.
    const auto input = experiment->make_solver_input(0, 1.0);
    for (std::size_t t = 1; t < input.thread_count(); ++t) {
        EXPECT_GT(input.workloads[0].instructions, input.workloads[t].instructions);
    }
}

TEST_F(barnes_experiment, run_all_policies_order_matches_enum)
{
    const double theta = experiment->equal_weight_theta();
    const auto runs = experiment->run_all_policies(theta);
    ASSERT_EQ(runs.size(), core::policy_count);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(runs[i].kind), i);
    }
}

TEST_F(barnes_experiment, pareto_points_normalized_to_nominal)
{
    const std::vector<double> ones = {1.0};
    const auto nominal_points =
        core::pareto_sweep(*experiment, policy_kind::nominal, ones);
    ASSERT_EQ(nominal_points.size(), 1u);
    EXPECT_NEAR(nominal_points[0].energy, 1.0, 1e-12);
    EXPECT_NEAR(nominal_points[0].time, 1.0, 1e-12);
}

TEST_F(barnes_experiment, predicted_mode_close_to_online)
{
    const double theta = experiment->equal_weight_theta();
    const auto online = experiment->run_policy(policy_kind::synts_online, theta);
    const auto predicted = experiment->run_synts_online_predicted(theta);
    ASSERT_EQ(predicted.intervals.size(), online.intervals.size());
    // Intervals of a phase are similar; prediction costs at most a few
    // percent EDP over the true-N online mode (see bench_ext_predictor).
    EXPECT_LT(predicted.sum.edp(), online.sum.edp() * 1.10);
    EXPECT_GT(predicted.sum.edp(), online.sum.edp() * 0.90);
    // Interval 0 is bootstrapped with the true workloads, so the decisions
    // and outcomes must agree exactly there.
    EXPECT_DOUBLE_EQ(predicted.intervals[0].energy, online.intervals[0].energy);
}

TEST_F(barnes_experiment, theta_multipliers_are_log_spaced)
{
    const auto multipliers = core::default_theta_multipliers();
    ASSERT_GE(multipliers.size(), 5u);
    for (std::size_t i = 1; i < multipliers.size(); ++i) {
        EXPECT_NEAR(multipliers[i] / multipliers[i - 1], 2.0, 1e-12);
    }
}

TEST_F(barnes_experiment, equal_weight_theta_positive_and_stable)
{
    const double a = experiment->equal_weight_theta();
    const double b = experiment->equal_weight_theta();
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

// --- digest drift guard -----------------------------------------------------
//
// The runtime's experiment cache trusts experiment_config::digest() (and the
// program tier trusts workload_digest()) to change whenever any
// result-affecting field changes. A field someone adds but forgets to fold
// in would silently serve stale cache entries; this table makes that a test
// failure instead. Every field of experiment_config -- including every
// energy_params and core_config field -- must appear here.

struct digest_perturbation {
    std::string name;
    std::function<void(experiment_config&)> mutate;
    /// True when the field feeds the stage-independent program artifacts
    /// (trace generation or architectural profiling), i.e. must also change
    /// workload_digest().
    bool affects_workload = false;
};

std::vector<digest_perturbation> digest_perturbations()
{
    return {
        {"thread_count", [](experiment_config& c) { c.thread_count = 8; }, true},
        {"seed", [](experiment_config& c) { c.seed = 7; }, true},
        {"sampling.sample_fraction",
         [](experiment_config& c) { c.sampling.sample_fraction = 0.25; }, false},
        {"sampling.sample_voltage_index",
         [](experiment_config& c) { c.sampling.sample_voltage_index += 1; }, false},
        {"sampling.min_sample_instructions",
         [](experiment_config& c) { c.sampling.min_sample_instructions += 100; }, false},
        {"characterization.histogram_bins",
         [](experiment_config& c) { c.characterization.histogram_bins = 256; }, false},
        {"characterization.histogram_headroom",
         [](experiment_config& c) { c.characterization.histogram_headroom = 1.25; },
         false},
        {"characterization.keep_sampling_trace",
         [](experiment_config& c) {
             c.characterization.keep_sampling_trace =
                 !c.characterization.keep_sampling_trace;
         },
         false},
        {"core.dcache.size_bytes",
         [](experiment_config& c) { c.characterization.core.dcache.size_bytes *= 2; },
         true},
        {"core.dcache.line_bytes",
         [](experiment_config& c) { c.characterization.core.dcache.line_bytes *= 2; },
         true},
        {"core.dcache.ways",
         [](experiment_config& c) { c.characterization.core.dcache.ways += 1; }, true},
        {"core.dcache.hit_latency_cycles",
         [](experiment_config& c) {
             c.characterization.core.dcache.hit_latency_cycles += 1;
         },
         true},
        {"core.dcache.miss_penalty_cycles",
         [](experiment_config& c) {
             c.characterization.core.dcache.miss_penalty_cycles += 6;
         },
         true},
        {"core.branch_mispredict_penalty",
         [](experiment_config& c) {
             c.characterization.core.branch_mispredict_penalty += 2;
         },
         true},
        {"core.mul_latency_cycles",
         [](experiment_config& c) { c.characterization.core.mul_latency_cycles += 1; },
         true},
        {"core.fp_latency_cycles",
         [](experiment_config& c) { c.characterization.core.fp_latency_cycles += 1; },
         true},
        {"core.predictor_index_bits",
         [](experiment_config& c) { c.characterization.core.predictor_index_bits += 1; },
         true},
        {"params.alpha_switching_cap",
         [](experiment_config& c) { c.params.alpha_switching_cap = 1.5; }, false},
        {"params.error_penalty_cycles",
         [](experiment_config& c) { c.params.error_penalty_cycles += 1; }, false},
        {"params.leakage_power",
         [](experiment_config& c) { c.params.leakage_power = 1e-6; }, false},
        {"voltage_class_spread",
         [](experiment_config& c) { c.voltage_class_spread = 0.0; }, false},
    };
}

TEST(experiment_config_digest, is_stable_for_equal_configs)
{
    const experiment_config a;
    const experiment_config b;
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.workload_digest(), b.workload_digest());
}

TEST(experiment_config_digest, every_field_perturbation_changes_the_digest)
{
    const experiment_config base;
    for (const digest_perturbation& p : digest_perturbations()) {
        experiment_config changed = base;
        p.mutate(changed);
        EXPECT_NE(changed.digest(), base.digest()) << "field not in digest(): " << p.name;
    }
}

TEST(experiment_config_digest, workload_digest_tracks_exactly_the_workload_fields)
{
    const experiment_config base;
    for (const digest_perturbation& p : digest_perturbations()) {
        experiment_config changed = base;
        p.mutate(changed);
        if (p.affects_workload) {
            EXPECT_NE(changed.workload_digest(), base.workload_digest())
                << "workload field not in workload_digest(): " << p.name;
        } else {
            EXPECT_EQ(changed.workload_digest(), base.workload_digest())
                << "evaluation-only field leaked into workload_digest(): " << p.name
                << " (it would needlessly split the shared program tier)";
        }
    }
}

TEST(experiment_config_digest, perturbed_digests_are_pairwise_distinct)
{
    // A weak mixer could map two different single-field perturbations to one
    // digest; with FNV-1a over 64 bits any collision here is a bug, not luck.
    const experiment_config base;
    std::vector<std::uint64_t> digests{base.digest()};
    for (const digest_perturbation& p : digest_perturbations()) {
        experiment_config changed = base;
        p.mutate(changed);
        digests.push_back(changed.digest());
    }
    for (std::size_t i = 0; i < digests.size(); ++i) {
        for (std::size_t j = i + 1; j < digests.size(); ++j) {
            EXPECT_NE(digests[i], digests[j]) << "digest collision between perturbations";
        }
    }
}

} // namespace
