// Driver-level API tests for core/experiment: theta sweeps, predicted-N
// mode, and the edge cases the figure benches rely on. One shared fixture
// keeps the (heavyweight) characterization to a single run.

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace {

using namespace synts;
using core::benchmark_experiment;
using core::policy_kind;

class barnes_experiment : public ::testing::Test {
protected:
    static void SetUpTestSuite()
    {
        core::experiment_config cfg;
        experiment = new benchmark_experiment(workload::benchmark_id::barnes,
                                              circuit::pipe_stage::simple_alu, cfg);
    }
    static void TearDownTestSuite()
    {
        delete experiment;
        experiment = nullptr;
    }
    static benchmark_experiment* experiment;
};

benchmark_experiment* barnes_experiment::experiment = nullptr;

TEST_F(barnes_experiment, make_solver_input_bounds)
{
    EXPECT_THROW((void)experiment->make_solver_input(99, 1.0), std::out_of_range);
    const auto input = experiment->make_solver_input(0, 1.0);
    EXPECT_EQ(input.thread_count(), 4u);
    EXPECT_NO_THROW(input.validate());
}

TEST_F(barnes_experiment, workloads_reflect_imbalance)
{
    // Thread 0 carries the most work per the calibrated profile.
    const auto input = experiment->make_solver_input(0, 1.0);
    for (std::size_t t = 1; t < input.thread_count(); ++t) {
        EXPECT_GT(input.workloads[0].instructions, input.workloads[t].instructions);
    }
}

TEST_F(barnes_experiment, run_all_policies_order_matches_enum)
{
    const double theta = experiment->equal_weight_theta();
    const auto runs = experiment->run_all_policies(theta);
    ASSERT_EQ(runs.size(), core::policy_count);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(runs[i].kind), i);
    }
}

TEST_F(barnes_experiment, pareto_points_normalized_to_nominal)
{
    const std::vector<double> ones = {1.0};
    const auto nominal_points =
        core::pareto_sweep(*experiment, policy_kind::nominal, ones);
    ASSERT_EQ(nominal_points.size(), 1u);
    EXPECT_NEAR(nominal_points[0].energy, 1.0, 1e-12);
    EXPECT_NEAR(nominal_points[0].time, 1.0, 1e-12);
}

TEST_F(barnes_experiment, predicted_mode_close_to_online)
{
    const double theta = experiment->equal_weight_theta();
    const auto online = experiment->run_policy(policy_kind::synts_online, theta);
    const auto predicted = experiment->run_synts_online_predicted(theta);
    ASSERT_EQ(predicted.intervals.size(), online.intervals.size());
    // Intervals of a phase are similar; prediction costs at most a few
    // percent EDP over the true-N online mode (see bench_ext_predictor).
    EXPECT_LT(predicted.sum.edp(), online.sum.edp() * 1.10);
    EXPECT_GT(predicted.sum.edp(), online.sum.edp() * 0.90);
    // Interval 0 is bootstrapped with the true workloads, so the decisions
    // and outcomes must agree exactly there.
    EXPECT_DOUBLE_EQ(predicted.intervals[0].energy, online.intervals[0].energy);
}

TEST_F(barnes_experiment, theta_multipliers_are_log_spaced)
{
    const auto multipliers = core::default_theta_multipliers();
    ASSERT_GE(multipliers.size(), 5u);
    for (std::size_t i = 1; i < multipliers.size(); ++i) {
        EXPECT_NEAR(multipliers[i] / multipliers[i - 1], 2.0, 1e-12);
    }
}

TEST_F(barnes_experiment, equal_weight_theta_positive_and_stable)
{
    const double a = experiment->equal_weight_theta();
    const double b = experiment->equal_weight_theta();
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

} // namespace
