// Tests for workload/registry + workload/scenarios: key identity rules
// (duplicate rejection, distinct digests per (family, params)), unknown-key
// failure modes, determinism of every scenario family, the scenario
// profiles' qualitative shapes, and the registry flowing end-to-end through
// the experiment pipeline.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "core/experiment.h"
#include "workload/registry.h"
#include "workload/scenarios.h"

namespace {

using namespace synts;
using namespace synts::workload;

// -- keys and registration ---------------------------------------------------

TEST(workload_registry, builtin_keys_are_stable_and_distinct)
{
    std::set<std::uint64_t> ids;
    std::set<std::string> names;
    for (const benchmark_id id : all_benchmarks()) {
        const workload_key key = builtin_key(id);
        EXPECT_EQ(key.name, benchmark_name(id));
        EXPECT_TRUE(ids.insert(key.id).second) << key.name;
        EXPECT_TRUE(names.insert(key.name).second) << key.name;
        // The implicit enum conversion IS builtin_key.
        EXPECT_EQ(workload_key(id), key);
        // Pure function: recomputing yields the same identity.
        EXPECT_EQ(builtin_key(id).id, key.id);
    }
}

TEST(workload_registry, builtins_contains_ten_splash_plus_scenarios)
{
    const workload_registry registry = workload_registry::with_builtins();
    EXPECT_GE(registry.size(), benchmark_count + 6);
    for (const benchmark_id id : all_benchmarks()) {
        EXPECT_TRUE(registry.contains(benchmark_name(id)));
    }
    for (const char* name : {"lock_ladder", "lock_ladder_heavy", "pipeline",
                             "pipeline_skewed", "graph_walk", "graph_walk_hubby"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
    }
    // Registration order is stable: the SPLASH-2 ten come first.
    const auto keys = registry.keys();
    ASSERT_GE(keys.size(), benchmark_count);
    for (std::size_t i = 0; i < benchmark_count; ++i) {
        EXPECT_EQ(keys[i],
                  builtin_key(static_cast<benchmark_id>(all_benchmarks()[i])));
    }
}

TEST(workload_registry, duplicate_name_and_duplicate_identity_are_rejected)
{
    workload_registry registry;
    register_lock_ladder(registry, "ladder_a", lock_ladder_params{});
    // Same name, different params: rejected on the name.
    EXPECT_THROW(register_lock_ladder(registry, "ladder_a",
                                      lock_ladder_params{.base_contention = 0.5}),
                 std::invalid_argument);
    // Different name, identical params: rejected on the identity digest
    // (two names aliasing one cache identity would be a silent share).
    EXPECT_THROW(register_lock_ladder(registry, "ladder_b", lock_ladder_params{}),
                 std::invalid_argument);
    // Different params under a fresh name: fine.
    EXPECT_NO_THROW(register_lock_ladder(registry, "ladder_b",
                                         lock_ladder_params{.base_contention = 0.5}));
    EXPECT_EQ(registry.size(), 2u);

    EXPECT_THROW(registry.add(workload_key{"", 1}, nullptr), std::invalid_argument);
    EXPECT_THROW(registry.add(workload_key{"x", 1}, nullptr), std::invalid_argument);
}

TEST(workload_registry, unknown_lookups_throw)
{
    const workload_registry registry = workload_registry::with_builtins();
    EXPECT_FALSE(registry.contains("nonesuch"));
    EXPECT_THROW((void)registry.key("nonesuch"), std::out_of_range);
    EXPECT_THROW((void)registry.make_profile(workload_key{"nonesuch", 0xBAD}, 4),
                 std::out_of_range);
    // An unregistered key propagates out of the whole pipeline too.
    EXPECT_THROW((void)core::make_program_artifacts(workload_key{"nonesuch", 0xBAD}),
                 std::out_of_range);
}

TEST(workload_registry, distinct_family_params_pairs_digest_differently)
{
    std::set<std::uint64_t> ids;
    const auto insert_unique = [&](const workload_key& key) {
        EXPECT_TRUE(ids.insert(key.id).second) << key.name << " id collided";
    };
    // A parameter ladder per family -- dozens of concrete workloads.
    for (const double contention : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        for (const double hold : {0.5, 1.0, 2.0}) {
            insert_unique(lock_ladder_key(
                "l", lock_ladder_params{.base_contention = contention,
                                        .hold_scale = hold}));
        }
    }
    for (const double w : {0.1, 0.2, 0.4, 0.8}) {
        insert_unique(pipeline_key(
            "p", pipeline_params{.stage_weights = {1.0, w}}));
        insert_unique(pipeline_key(
            "p", pipeline_params{.stage_weights = {1.0, w}, .queue_pressure = 0.9}));
    }
    for (const double alpha : {0.8, 1.0, 1.3, 1.8}) {
        for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
            insert_unique(graph_walk_key(
                "g", graph_walk_params{.tail_alpha = alpha, .mix_seed = seed}));
        }
    }
    // Families never collide with each other or the builtins, even with
    // coincidentally equal param digests (the family tag separates them).
    for (const benchmark_id id : all_benchmarks()) {
        insert_unique(builtin_key(id));
    }
    EXPECT_EQ(ids.size(), 6u * 3u + 4u * 2u + 4u * 3u + benchmark_count);
}

// -- scenario family shapes --------------------------------------------------

TEST(workload_scenarios, families_validate_parameters)
{
    EXPECT_THROW((void)make_lock_ladder_profile({.rungs = 0}, 4),
                 std::invalid_argument);
    EXPECT_THROW((void)make_lock_ladder_profile({.base_contention = 1.5}, 4),
                 std::invalid_argument);
    EXPECT_THROW((void)make_lock_ladder_profile({}, 0), std::invalid_argument);
    EXPECT_THROW((void)make_pipeline_profile({.stage_weights = {}}, 4),
                 std::invalid_argument);
    EXPECT_THROW((void)make_pipeline_profile({.stage_weights = {1.0, -0.5}}, 4),
                 std::invalid_argument);
    EXPECT_THROW((void)make_graph_walk_profile({.tail_alpha = 0.0}, 4),
                 std::invalid_argument);
    EXPECT_THROW((void)make_graph_walk_profile({.hub_fraction = 2.0}, 4),
                 std::invalid_argument);
}

TEST(workload_scenarios, lock_ladder_contention_climbs_the_rungs)
{
    const benchmark_profile p = make_lock_ladder_profile({}, 4);
    ASSERT_EQ(p.threads.size(), 4u);
    // Carry sensitization (the error mechanism) rises with the rung...
    EXPECT_GT(p.threads[3].long_carry_fraction, p.threads[0].long_carry_fraction);
    EXPECT_GT(p.threads[3].register_collision_fraction,
              p.threads[0].register_collision_fraction);
    // ...and so does the work share: the convoy head is the last arrival.
    EXPECT_EQ(p.work_imbalance[3], 1.0);
    EXPECT_LT(p.work_imbalance[0], 1.0);
    // More hot locks spread the convoy: the head's error pressure drops.
    const benchmark_profile spread = make_lock_ladder_profile({.hot_locks = 4}, 4);
    EXPECT_LT(spread.threads[3].long_carry_fraction,
              p.threads[3].long_carry_fraction);
}

TEST(workload_scenarios, pipeline_stage_weights_set_the_imbalance)
{
    const pipeline_params params{.stage_weights = {1.0, 0.5, 0.25}};
    const benchmark_profile p = make_pipeline_profile(params, 6);
    ASSERT_EQ(p.work_imbalance.size(), 6u);
    // Threads cycle through the stages; weights normalize to max 1.
    EXPECT_DOUBLE_EQ(p.work_imbalance[0], 1.0);
    EXPECT_DOUBLE_EQ(p.work_imbalance[1], 0.5);
    EXPECT_DOUBLE_EQ(p.work_imbalance[2], 0.25);
    EXPECT_DOUBLE_EQ(p.work_imbalance[3], 1.0);
    // Light stages spin hardest under backpressure.
    const benchmark_profile pressured =
        make_pipeline_profile({.stage_weights = {1.0, 0.25}, .queue_pressure = 1.0}, 4);
    EXPECT_GT(pressured.threads[1].register_collision_fraction,
              pressured.threads[0].register_collision_fraction);
    // The transform stage is the multiplier-heavy one.
    EXPECT_GT(p.threads[1].mul_sensitize_fraction, p.threads[0].mul_sensitize_fraction);
}

TEST(workload_scenarios, graph_walk_tail_is_heavy_and_seeded)
{
    const benchmark_profile p = make_graph_walk_profile({}, 8);
    double lo = 1.0;
    double hi = 0.0;
    for (const double w : p.work_imbalance) {
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    EXPECT_DOUBLE_EQ(hi, 1.0);   // heaviest hub normalizes to 1
    EXPECT_LT(lo, 0.8);          // and the tail is genuinely imbalanced
    // A different graph (mix_seed) redraws the tail.
    const benchmark_profile q = make_graph_walk_profile({.mix_seed = 99}, 8);
    EXPECT_NE(p.work_imbalance, q.work_imbalance);
}

// -- determinism -------------------------------------------------------------

TEST(workload_scenarios, every_family_is_deterministic_per_seed)
{
    const workload_registry registry = workload_registry::with_builtins();
    for (const char* name : {"lock_ladder", "lock_ladder_heavy", "pipeline",
                             "pipeline_skewed", "graph_walk", "graph_walk_hubby"}) {
        const workload_key key = registry.key(name);
        const benchmark_profile a = registry.make_profile(key, 4);
        const benchmark_profile b = registry.make_profile(key, 4);
        ASSERT_EQ(a.work_imbalance, b.work_imbalance) << name;
        ASSERT_EQ(a.stream_salt, b.stream_salt) << name;
        EXPECT_NE(a.stream_salt, 0u) << name;

        // Trace generation: bit-identical at equal seeds, different across
        // seeds (the salt feeds the stream, it does not freeze it).
        const auto t1 = generate_program_trace(a, 7);
        const auto t2 = generate_program_trace(b, 7);
        ASSERT_EQ(t1.threads.size(), t2.threads.size()) << name;
        for (std::size_t t = 0; t < t1.threads.size(); ++t) {
            ASSERT_EQ(t1.threads[t].ops.size(), t2.threads[t].ops.size()) << name;
            for (std::size_t i = 0; i < t1.threads[t].ops.size(); i += 101) {
                ASSERT_EQ(t1.threads[t].ops[i].encoding, t2.threads[t].ops[i].encoding);
                ASSERT_EQ(t1.threads[t].ops[i].operand_a, t2.threads[t].ops[i].operand_a);
            }
        }
        const auto t3 = generate_program_trace(a, 8);
        bool differs = false;
        for (std::size_t i = 0; i < t1.threads[0].ops.size() && !differs; ++i) {
            differs = t1.threads[0].ops[i].encoding != t3.threads[0].ops[i].encoding;
        }
        EXPECT_TRUE(differs) << name;
        EXPECT_NO_THROW(t1.validate());
    }
}

TEST(workload_scenarios, distinct_params_generate_distinct_traces_at_equal_seed)
{
    // The stream salt separates parameterizations: identical seeds, rails
    // apart operand streams (otherwise two cache keys could share a trace).
    const benchmark_profile a = make_lock_ladder_profile({}, 2);
    const benchmark_profile b =
        make_lock_ladder_profile({.base_contention = 0.35}, 2);
    ASSERT_NE(a.stream_salt, b.stream_salt);
    const auto ta = generate_program_trace(a, 42);
    const auto tb = generate_program_trace(b, 42);
    bool differs = false;
    const std::size_t n = std::min(ta.threads[0].ops.size(), tb.threads[0].ops.size());
    for (std::size_t i = 0; i < n && !differs; ++i) {
        differs = ta.threads[0].ops[i].encoding != tb.threads[0].ops[i].encoding;
    }
    EXPECT_TRUE(differs);
}

// -- CLI-defined instances ---------------------------------------------------

TEST(workload_scenarios, parse_scenario_definition_matches_programmatic_identity)
{
    const scenario_definition ladder = parse_scenario_definition(
        "lock_ladder:name=ll9,base_contention=0.55,rungs=9,hot_locks=2");
    EXPECT_EQ(ladder.family, "lock_ladder");
    EXPECT_EQ(ladder.name, "ll9");
    lock_ladder_params ladder_params;
    ladder_params.base_contention = 0.55;
    ladder_params.rungs = 9;
    ladder_params.hot_locks = 2;
    // Same identity as the programmatic helper: CLI-defined and
    // compiled-in instances share cache/store keys for equal params.
    EXPECT_EQ(ladder.key, lock_ladder_key("ll9", ladder_params));

    const scenario_definition pipe = parse_scenario_definition(
        "pipeline:name=p3,stage_weights=1.0+0.5+0.25,queue_pressure=0.8");
    pipeline_params pipe_params;
    pipe_params.stage_weights = {1.0, 0.5, 0.25};
    pipe_params.queue_pressure = 0.8;
    EXPECT_EQ(pipe.key, pipeline_key("p3", pipe_params));

    const scenario_definition walk = parse_scenario_definition(
        "graph_walk:name=gw,tail_alpha=1.1,mix_seed=5");
    graph_walk_params walk_params;
    walk_params.tail_alpha = 1.1;
    walk_params.mix_seed = 5;
    EXPECT_EQ(walk.key, graph_walk_key("gw", walk_params));
}

TEST(workload_registry, register_defined_installs_a_working_factory)
{
    workload_registry registry;
    const workload_key defined =
        registry.register_defined("graph_walk:name=gw,tail_alpha=1.1,mix_seed=5");
    ASSERT_TRUE(registry.contains("gw"));
    EXPECT_EQ(registry.key("gw"), defined);

    graph_walk_params params;
    params.tail_alpha = 1.1;
    params.mix_seed = 5;
    const benchmark_profile via_registry = registry.make_profile(defined, 4);
    const benchmark_profile programmatic = make_graph_walk_profile(params, 4);
    // Registered-name stamping aside, the profiles are the same workload.
    EXPECT_EQ(via_registry.name, "gw");
    EXPECT_EQ(via_registry.stream_salt, programmatic.stream_salt);
    EXPECT_EQ(via_registry.thread_count, programmatic.thread_count);
    EXPECT_EQ(via_registry.work_imbalance, programmatic.work_imbalance);
}

TEST(workload_registry, register_defined_rejects_duplicates)
{
    workload_registry registry;
    (void)registry.register_defined("lock_ladder:name=dup,rungs=3");
    // Same name again.
    EXPECT_THROW((void)registry.register_defined("lock_ladder:name=dup,rungs=4"),
                 std::invalid_argument);
    // Different name, identical (family, params): identity collision.
    EXPECT_THROW((void)registry.register_defined("lock_ladder:name=dup2,rungs=3"),
                 std::invalid_argument);
}

TEST(workload_scenarios, scenario_definition_grammar_errors_are_rejected)
{
    for (const char* bad : {
             "",                                   // empty
             "lock_ladder",                        // no colon
             ":name=x",                            // empty family
             "lock_ladder:",                       // empty body
             "nosuch:name=x",                      // unknown family
             "lock_ladder:rungs=3",                // missing name
             "lock_ladder:name=",                  // empty name
             "lock_ladder:name=x,frob=1",          // unknown parameter
             "lock_ladder:name=x,rungs",           // '='-less token
             "lock_ladder:name=x,rungs=abc",       // non-numeric unsigned
             "lock_ladder:name=x,rungs=-1",        // signed unsigned
             "lock_ladder:name=x,rungs=3,rungs=4", // duplicate parameter
             "lock_ladder:name=x,base_contention=1.5", // family validation
             "pipeline:name=x,stage_weights=1.0+oops", // bad weight entry
             "graph_walk:name=x,tail_alpha=0",         // family validation
         }) {
        EXPECT_THROW((void)parse_scenario_definition(bad), std::invalid_argument)
            << "\"" << bad << "\"";
    }
}

// -- end to end --------------------------------------------------------------

TEST(workload_scenarios, scenario_workload_characterizes_through_the_pipeline)
{
    const workload_key key = workload_registry::global().key("lock_ladder");
    const auto artifacts = core::make_program_artifacts(key);
    ASSERT_NE(artifacts, nullptr);
    EXPECT_NO_THROW(artifacts->validate());
    EXPECT_EQ(artifacts->workload, key);
    core::experiment_config config;
    EXPECT_TRUE(artifacts->provenance_matches(key, config.thread_count,
                                              config.workload_digest()));
    // Heterogeneous by construction: the convoy head's error behavior must
    // separate from rung 0 after the full cross-layer characterization.
    const core::benchmark_experiment experiment(key, circuit::pipe_stage::simple_alu);
    EXPECT_EQ(experiment.thread_count(), config.thread_count);
    EXPECT_GT(experiment.interval_count(), 0u);
}

} // namespace
