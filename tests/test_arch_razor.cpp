// Tests for arch/razor: trace replay, Bernoulli runs, and the Eq. 4.1
// identity.

#include <gtest/gtest.h>

#include "arch/razor.h"
#include "energy/energy_model.h"

namespace {

using namespace synts::arch;

TEST(razor_replay, counts_errors_against_period)
{
    const std::vector<double> delays = {10.0, 20.0, 30.0, 40.0};
    const razor_run_stats stats = replay_delay_trace(delays, 25.0, 100);
    EXPECT_EQ(stats.instructions, 4u);
    EXPECT_EQ(stats.error_count, 2u);
    EXPECT_EQ(stats.recovery_cycles, 10u); // 2 errors x 5 cycles
    EXPECT_EQ(stats.total_cycles(), 110u);
    EXPECT_DOUBLE_EQ(stats.error_probability(), 0.5);
}

TEST(razor_replay, boundary_is_strict)
{
    const std::vector<double> delays = {25.0};
    const razor_run_stats stats = replay_delay_trace(delays, 25.0, 1);
    EXPECT_EQ(stats.error_count, 0u); // delay == period is safe
}

TEST(razor_replay, custom_penalty)
{
    const std::vector<double> delays = {30.0, 30.0};
    const razor_run_stats stats = replay_delay_trace(delays, 25.0, 10, 7);
    EXPECT_EQ(stats.recovery_cycles, 14u);
}

TEST(razor_replay, spi_matches_equation_4_1)
{
    // SPI = t_clk * (p_err * C_penalty + CPI_base) must hold exactly for
    // the replay accounting when base_cycles = N * CPI_base.
    const std::size_t n = 1000;
    std::vector<double> delays(n, 10.0);
    for (std::size_t i = 0; i < n; i += 10) {
        delays[i] = 100.0; // 10% of instructions error at t_clk = 50
    }
    const double cpi_base = 2.0;
    const std::uint64_t base_cycles = static_cast<std::uint64_t>(n * cpi_base);
    const razor_run_stats stats = replay_delay_trace(delays, 50.0, base_cycles);

    const double expected_spi = synts::energy::seconds_per_instruction(
        50.0, stats.error_probability(), cpi_base, razor_default_penalty_cycles);
    EXPECT_NEAR(stats.seconds_per_instruction(), expected_spi, 1e-9);
}

TEST(razor_bernoulli, error_rate_concentrates)
{
    synts::util::xoshiro256 rng(5);
    const razor_run_stats stats = run_bernoulli_errors(200000, 0.07, 1.0, 200000, rng);
    EXPECT_NEAR(stats.error_probability(), 0.07, 0.005);
}

TEST(razor_bernoulli, zero_and_one_probability)
{
    synts::util::xoshiro256 rng(7);
    EXPECT_EQ(run_bernoulli_errors(1000, 0.0, 1.0, 1000, rng).error_count, 0u);
    EXPECT_EQ(run_bernoulli_errors(1000, 1.0, 1.0, 1000, rng).error_count, 1000u);
}

TEST(razor_stats, execution_time_is_cycles_times_period)
{
    razor_run_stats stats;
    stats.instructions = 10;
    stats.base_cycles = 20;
    stats.error_count = 2;
    stats.recovery_cycles = 10;
    stats.clock_period = 3.0;
    EXPECT_DOUBLE_EQ(stats.execution_time(), 90.0);
}

TEST(razor_stats, empty_run_is_safe)
{
    const razor_run_stats stats = replay_delay_trace({}, 10.0, 0);
    EXPECT_DOUBLE_EQ(stats.error_probability(), 0.0);
    EXPECT_DOUBLE_EQ(stats.seconds_per_instruction(), 0.0);
}

} // namespace
