// Tests for circuit/cell_library: truth tables and parameter sanity.

#include <gtest/gtest.h>

#include "circuit/cell_library.h"

namespace {

using namespace synts::circuit;

/// Reference boolean function for each cell kind.
bool reference_eval(cell_kind kind, bool a, bool b, bool c)
{
    switch (kind) {
    case cell_kind::const0:
        return false;
    case cell_kind::const1:
        return true;
    case cell_kind::buf:
    case cell_kind::dff:
        return a;
    case cell_kind::inv:
        return !a;
    case cell_kind::and2:
        return a && b;
    case cell_kind::or2:
        return a || b;
    case cell_kind::nand2:
        return !(a && b);
    case cell_kind::nor2:
        return !(a || b);
    case cell_kind::xor2:
        return a != b;
    case cell_kind::xnor2:
        return a == b;
    case cell_kind::and3:
        return a && b && c;
    case cell_kind::or3:
        return a || b || c;
    case cell_kind::nand3:
        return !(a && b && c);
    case cell_kind::nor3:
        return !(a || b || c);
    case cell_kind::aoi21:
        return !((a && b) || c);
    case cell_kind::oai21:
        return !((a || b) && c);
    case cell_kind::mux2:
        return c ? b : a;
    }
    return false;
}

class cell_truth_tables : public ::testing::TestWithParam<cell_kind> {};

TEST_P(cell_truth_tables, matches_reference_on_all_inputs)
{
    const cell_kind kind = GetParam();
    const std::size_t arity = cell_input_count(kind);
    const int combos = 1 << arity;
    for (int bits = 0; bits < combos; ++bits) {
        const bool a = bits & 1;
        const bool b = bits & 2;
        const bool c = bits & 4;
        bool inputs[3] = {a, b, c};
        const bool got = evaluate_cell(kind, std::span<const bool>(inputs, arity));
        const bool want = reference_eval(kind, a, b, c);
        ASSERT_EQ(got, want) << cell_kind_name(kind) << " inputs=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(
    all_kinds, cell_truth_tables,
    ::testing::Values(cell_kind::const0, cell_kind::const1, cell_kind::buf,
                      cell_kind::inv, cell_kind::and2, cell_kind::or2, cell_kind::nand2,
                      cell_kind::nor2, cell_kind::xor2, cell_kind::xnor2, cell_kind::and3,
                      cell_kind::or3, cell_kind::nand3, cell_kind::nor3, cell_kind::aoi21,
                      cell_kind::oai21, cell_kind::mux2, cell_kind::dff),
    [](const ::testing::TestParamInfo<cell_kind>& info) {
        return std::string(cell_kind_name(info.param));
    });

TEST(cell_library, parameters_positive_for_real_cells)
{
    const cell_library lib = cell_library::standard_22nm();
    for (std::size_t k = 0; k < cell_kind_count; ++k) {
        const auto kind = static_cast<cell_kind>(k);
        if (kind == cell_kind::const0 || kind == cell_kind::const1) {
            continue;
        }
        const cell_params& p = lib.params(kind);
        EXPECT_GT(p.intrinsic_delay_ps, 0.0) << cell_kind_name(kind);
        EXPECT_GT(p.area_um2, 0.0) << cell_kind_name(kind);
        EXPECT_GT(p.switch_energy_fj, 0.0) << cell_kind_name(kind);
    }
}

TEST(cell_library, familiar_delay_ordering)
{
    const cell_library lib = cell_library::standard_22nm();
    // INV is the fastest gate; XOR2 is slower than NAND2; 3-input slower
    // than 2-input of the same family.
    EXPECT_LT(lib.params(cell_kind::inv).intrinsic_delay_ps,
              lib.params(cell_kind::nand2).intrinsic_delay_ps);
    EXPECT_LT(lib.params(cell_kind::nand2).intrinsic_delay_ps,
              lib.params(cell_kind::xor2).intrinsic_delay_ps);
    EXPECT_LT(lib.params(cell_kind::nand2).intrinsic_delay_ps,
              lib.params(cell_kind::nand3).intrinsic_delay_ps);
    EXPECT_LT(lib.params(cell_kind::and2).intrinsic_delay_ps,
              lib.params(cell_kind::and3).intrinsic_delay_ps);
}

TEST(cell_library, delay_grows_with_fanout)
{
    const cell_library lib = cell_library::standard_22nm();
    EXPECT_LT(lib.delay_ps(cell_kind::nand2, 1), lib.delay_ps(cell_kind::nand2, 8));
}

TEST(cell_library, arity_lookup)
{
    EXPECT_EQ(cell_input_count(cell_kind::const0), 0u);
    EXPECT_EQ(cell_input_count(cell_kind::inv), 1u);
    EXPECT_EQ(cell_input_count(cell_kind::xor2), 2u);
    EXPECT_EQ(cell_input_count(cell_kind::mux2), 3u);
    EXPECT_EQ(cell_input_count(cell_kind::aoi21), 3u);
}

TEST(cell_library, names_are_unique_and_nonempty)
{
    std::set<std::string_view> names;
    for (std::size_t k = 0; k < cell_kind_count; ++k) {
        const auto name = cell_kind_name(static_cast<cell_kind>(k));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second) << name;
    }
}

} // namespace
