// Tests for runtime/speculator: prediction (next ladder rung, sibling
// stages), hit accounting on a warm ladder walk, demand joining an
// in-flight speculation, preemption by a genuine demand miss, the
// never-torn guarantee (a cancelled speculation leaves no cache entry),
// and sweep bit-identity with speculation enabled.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "runtime/experiment_cache.h"
#include "runtime/speculator.h"
#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "runtime/thread_pool.h"
#include "workload/registry.h"
#include "workload/scenarios.h"

namespace {

using namespace synts;
using runtime::experiment_cache;
using runtime::speculator;
using runtime::thread_pool;

// Registers rungs `first..last` of a ladder named `<prefix>_<rung>` in the
// process-global registry. The registry rejects duplicate names AND
// duplicate identities (family + params), so each test passes a distinct
// `salt` to keep its rung parameters unique across the binary.
workload::workload_key register_ladder(const std::string& prefix, double salt,
                                       int first, int last)
{
    workload::workload_registry& registry = workload::workload_registry::global();
    workload::workload_key head;
    for (int rung = first; rung <= last; ++rung) {
        workload::lock_ladder_params params;
        params.base_contention = 0.1 + 0.05 * rung;
        params.hold_scale = salt;
        const std::string name = prefix + "_" + std::to_string(rung);
        if (!registry.contains(name)) {
            workload::register_lock_ladder(registry, name, params);
        }
        if (rung == first) {
            head = registry.key(name);
        }
    }
    return head;
}

TEST(runtime_speculator, predicts_next_ladder_rung_and_hits_on_the_walk)
{
    const workload::workload_key rung1 = register_ladder("spec_walk", 1.01, 1, 3);
    const workload::workload_key rung2 =
        workload::workload_registry::global().key("spec_walk_2");

    thread_pool pool(2);
    experiment_cache cache;
    speculator spec(pool, cache, /*max_inflight=*/1);
    constexpr auto stage = circuit::pipe_stage::decode;

    // Demand rung 1: the pool is idle, so the speculator should predict
    // and launch rung 2 (ladder-next outranks sibling stages).
    spec.observe(rung1, stage, {});
    const auto demanded = cache.get_or_create(rung1, stage);
    EXPECT_NE(demanded, nullptr);
    spec.drain();
    EXPECT_GE(spec.launched(), 1u);
    EXPECT_TRUE(cache.contains(rung2, stage));

    // The walk arrives at rung 2: a speculative hit, served from cache.
    spec.observe(rung2, stage, {});
    EXPECT_EQ(spec.hits(), 1u);
    // Settle the follow-on speculation this observe seeded (rung 3): its
    // own construction records tier misses we must not confuse with
    // demand's, so snapshot the counter only after it is done.
    spec.drain();
    const std::uint64_t misses_before = cache.miss_count();
    const auto warm = cache.get_or_create(rung2, stage);
    EXPECT_NE(warm, nullptr);
    EXPECT_EQ(cache.miss_count(), misses_before); // no construction on demand
}

TEST(runtime_speculator, predicts_sibling_stages_which_share_program_artifacts)
{
    thread_pool pool(2);
    experiment_cache cache;
    speculator spec(pool, cache, /*max_inflight=*/2);

    // "radix" has no trailing digits -- no ladder prediction -- so the
    // speculations are the two sibling stages of the demanded pair.
    spec.observe(workload::benchmark_id::radix, circuit::pipe_stage::decode, {});
    const auto demanded =
        cache.get_or_create(workload::benchmark_id::radix, circuit::pipe_stage::decode);
    EXPECT_NE(demanded, nullptr);
    spec.drain();

    EXPECT_EQ(spec.launched(), 2u);
    EXPECT_TRUE(
        cache.contains(workload::benchmark_id::radix, circuit::pipe_stage::simple_alu));
    EXPECT_TRUE(
        cache.contains(workload::benchmark_id::radix, circuit::pipe_stage::complex_alu));

    // Walking onto a sibling is a hit and costs no stage construction.
    const std::uint64_t misses_before = cache.miss_count();
    spec.observe(workload::benchmark_id::radix, circuit::pipe_stage::simple_alu, {});
    EXPECT_EQ(spec.hits(), 1u);
    (void)cache.get_or_create(workload::benchmark_id::radix,
                              circuit::pipe_stage::simple_alu);
    EXPECT_EQ(cache.miss_count(), misses_before);
}

TEST(runtime_speculator, demand_joins_inflight_speculation_as_cache_waiter)
{
    const workload::workload_key rung1 = register_ladder("spec_join", 1.02, 1, 2);
    const workload::workload_key rung2 =
        workload::workload_registry::global().key("spec_join_2");

    thread_pool pool(2);
    experiment_cache cache;
    speculator spec(pool, cache, /*max_inflight=*/1);
    constexpr auto stage = circuit::pipe_stage::decode;

    spec.observe(rung1, stage, {}); // launches rung 2 speculatively
    ASSERT_EQ(spec.launched(), 1u);

    // Demand rung 2 immediately: whether the speculation is still
    // in-flight (demand joins as a waiter) or already published, the
    // observe records exactly one hit and the get returns the entry the
    // speculation constructed -- never a second construction.
    spec.observe(rung2, stage, {});
    EXPECT_EQ(spec.hits(), 1u);
    const auto experiment = cache.get_or_create(rung2, stage);
    EXPECT_NE(experiment, nullptr);
    spec.drain();
    EXPECT_EQ(spec.launched(), 1u); // joining never relaunches
    EXPECT_EQ(spec.cancelled(), 0u);
}

TEST(runtime_speculator, genuine_demand_miss_preempts_and_leaves_no_torn_entry)
{
    const workload::workload_key rung1 = register_ladder("spec_squash", 1.03, 1, 2);
    const workload::workload_key rung2 =
        workload::workload_registry::global().key("spec_squash_2");

    thread_pool pool(2);
    experiment_cache cache;
    speculator spec(pool, cache, /*max_inflight=*/1);
    constexpr auto stage = circuit::pipe_stage::decode;

    spec.observe(rung1, stage, {}); // speculation on rung 2 begins
    ASSERT_EQ(spec.launched(), 1u);

    // Demand swerves off the ladder: "radix" is a genuine miss, so every
    // in-flight speculation is squashed to free the workers.
    spec.observe(workload::benchmark_id::radix, stage, {});
    spec.drain();
    if (spec.cancelled() > 0) {
        // The squash won the race: the abandoned construction must have
        // published NOTHING -- no torn cell, demand would rebuild cleanly.
        EXPECT_FALSE(cache.contains(rung2, stage));
        EXPECT_GT(spec.wasted_ns(), 0u);
    } else {
        // The speculation settled before the cancel landed; then its
        // artifact is complete and resident.
        EXPECT_TRUE(cache.contains(rung2, stage));
    }
}

TEST(runtime_speculator, destructor_cancels_and_drains_outstanding_work)
{
    const workload::workload_key rung1 = register_ladder("spec_dtor", 1.04, 1, 2);
    thread_pool pool(2);
    experiment_cache cache;
    {
        speculator spec(pool, cache, /*max_inflight=*/1);
        spec.observe(rung1, circuit::pipe_stage::decode, {});
        // Destroyed with the speculation possibly mid-construction.
    }
    // The pool outlives the speculator and is still fully usable.
    auto probe = pool.submit([] { return 5; });
    EXPECT_EQ(probe.get(), 5);
}

TEST(runtime_speculator, sweep_with_speculation_is_bit_identical)
{
    const workload::workload_key rung1 = register_ladder("spec_ident", 1.05, 1, 3);
    // Single pair: its task observes an otherwise-idle pool, so the idle
    // gate deterministically opens and speculation actually launches
    // (ladder-next rung 2 plus a sibling stage) DURING the sweep.
    runtime::sweep_spec spec;
    spec.benchmarks = {rung1};
    spec.stages = {circuit::pipe_stage::decode};
    spec.policies = {core::policy_kind::synts_offline, core::policy_kind::no_ts};
    spec.theta_multipliers = {0.5, 1.0};

    std::string baseline;
    {
        thread_pool pool(2);
        experiment_cache cache;
        const runtime::sweep_scheduler scheduler(pool, cache);
        const runtime::sweep_result result = scheduler.run(spec);
        std::ostringstream out;
        runtime::write_sweep_json(result, out);
        baseline = out.str();
    }

    std::string speculated;
    std::uint64_t launched = 0;
    {
        thread_pool pool(2);
        experiment_cache cache;
        speculator engine(pool, cache, /*max_inflight=*/2);
        runtime::sweep_options options;
        options.speculate = &engine;
        const runtime::sweep_scheduler scheduler(pool, cache);
        const runtime::sweep_result result = scheduler.run(spec, options);
        engine.drain();
        launched = engine.launched();
        std::ostringstream out;
        runtime::write_sweep_json(result, out);
        speculated = out.str();
    }

    EXPECT_GT(launched, 0u); // speculation actually happened...
    EXPECT_EQ(baseline, speculated); // ...and changed not one byte
}

} // namespace
