// Tests for util/table and util/csv.

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace synts::util;

TEST(text_table, renders_header_and_rows)
{
    text_table t({"name", "value"});
    t.begin_row();
    t.cell(std::string("alpha"));
    t.cell(1.5, 2);
    t.begin_row();
    t.cell(std::string("beta"));
    t.cell(static_cast<long long>(7));
    const std::string out = t.render(0);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(text_table, pads_columns_to_widest_cell)
{
    text_table t({"a", "b"});
    t.add_row({"wide-cell-content", "x"});
    const std::string out = t.render(0);
    std::istringstream lines(out);
    std::string header;
    std::getline(lines, header);
    std::string underline;
    std::getline(lines, underline);
    EXPECT_GE(underline.find("-"), 0u);
    EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
}

TEST(format, format_double_precision)
{
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(format, vs_paper_includes_delta)
{
    const std::string s = format_vs_paper(0.93, 1.0, 2);
    EXPECT_NE(s.find("0.93"), std::string::npos);
    EXPECT_NE(s.find("paper 1.00"), std::string::npos);
    EXPECT_NE(s.find("-7.0%"), std::string::npos);
}

TEST(format, vs_paper_zero_expected_omits_delta)
{
    const std::string s = format_vs_paper(0.5, 0.0, 2);
    EXPECT_EQ(s.find('%'), std::string::npos);
}

TEST(csv, writes_header_and_rows)
{
    std::ostringstream out;
    {
        csv_writer w(out);
        w.header({"a", "b"});
        w.begin_row();
        w.field(std::string("x"));
        w.field(1.5);
        w.begin_row();
        w.field(static_cast<long long>(3));
        w.field(std::string("y"));
    }
    EXPECT_EQ(out.str(), "a,b\nx,1.5\n3,y\n");
}

TEST(csv, escapes_special_characters)
{
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(csv, finish_is_idempotent)
{
    std::ostringstream out;
    csv_writer w(out);
    w.begin_row();
    w.field(std::string("only"));
    w.finish();
    w.finish();
    EXPECT_EQ(out.str(), "only\n");
}

} // namespace
