// helpers.h -- shared test utilities: functional netlist evaluation.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "circuit/cell_library.h"
#include "circuit/dynamic_timing.h"
#include "circuit/netlist.h"
#include "circuit/voltage_model.h"

namespace synts::test {

/// Functional evaluator for a combinational netlist (single nominal
/// corner). Also exposes the per-step sensitized delay.
class netlist_evaluator {
public:
    explicit netlist_evaluator(const circuit::netlist& nl)
        : lib_(circuit::cell_library::standard_22nm()), vm_(0.0),
          sim_(nl, lib_, vm_, std::span<const double>(&nominal_vdd_, 1)), nl_(nl),
          bits_(std::make_unique<bool[]>(nl.input_count()))
    {
    }

    /// Drives the inputs (LSB-first bit span) and returns the sensitized
    /// delay of the step.
    double step(std::span<const bool> inputs)
    {
        double delay = 0.0;
        sim_.step(inputs, std::span<double>(&delay, 1));
        return delay;
    }

    /// Drives inputs packed from `fields`: each (value, width) pair is
    /// written LSB-first in order.
    double step_fields(std::span<const std::pair<std::uint64_t, std::size_t>> fields)
    {
        std::size_t cursor = 0;
        for (const auto& [value, width] : fields) {
            for (std::size_t i = 0; i < width; ++i) {
                bits_[cursor++] = ((value >> i) & 1) != 0;
            }
        }
        return step(std::span<const bool>(bits_.get(), nl_.input_count()));
    }

    /// Reads `width` primary outputs starting at `first` as an LSB-first
    /// integer.
    [[nodiscard]] std::uint64_t read_outputs(std::size_t first, std::size_t width) const
    {
        std::uint64_t value = 0;
        for (std::size_t i = 0; i < width; ++i) {
            if (sim_.output_value(first + i)) {
                value |= (std::uint64_t{1} << i);
            }
        }
        return value;
    }

    /// Single output bit.
    [[nodiscard]] bool read_output(std::size_t index) const
    {
        return sim_.output_value(index);
    }

    /// Stage nominal period (STA critical path at 1.0 V).
    [[nodiscard]] double nominal_period_ps() const { return sim_.nominal_period_ps(0); }

    /// Resets simulator state to all-zero.
    void reset() { sim_.reset(); }

private:
    double nominal_vdd_ = 1.0;
    circuit::cell_library lib_;
    circuit::voltage_model vm_;
    circuit::dynamic_timing_simulator sim_;
    const circuit::netlist& nl_;
    std::unique_ptr<bool[]> bits_;
};

} // namespace synts::test
