// Tests for the extension modules: leakage-aware energy (Section 4.1's
// "can be easily extended"), the online workload predictor, and the
// critical-section generalization (the conclusion's future work).

#include <gtest/gtest.h>

#include "core/critical_sections.h"
#include "core/workload_predictor.h"
#include "solver_fixtures.h"

namespace {

using namespace synts::core;
using synts::test::make_random_instance;

// --- leakage extension ----------------------------------------------------

TEST(leakage, zero_by_default_matches_paper_model)
{
    auto inst = make_random_instance(3, 3, 3, 1);
    EXPECT_DOUBLE_EQ(inst.input.params.leakage_power, 0.0);
    const thread_metrics m =
        evaluate_thread(*inst.space, inst.input.workloads[0], *inst.input.error_models[0],
                        inst.space->nominal_assignment(), inst.input.params);
    EXPECT_DOUBLE_EQ(m.energy,
                     synts::energy::thread_energy(inst.input.params, m.vdd,
                                                  inst.input.workloads[0].instructions,
                                                  m.error_probability,
                                                  inst.input.workloads[0].cpi_base));
}

TEST(leakage, adds_time_proportional_energy)
{
    auto inst = make_random_instance(3, 3, 3, 2);
    const thread_assignment a = inst.space->nominal_assignment();
    const thread_metrics base = evaluate_thread(
        *inst.space, inst.input.workloads[0], *inst.input.error_models[0], a,
        inst.input.params);

    auto leaky = inst.input.params;
    leaky.leakage_power = 1e-3;
    const thread_metrics with_leak = evaluate_thread(
        *inst.space, inst.input.workloads[0], *inst.input.error_models[0], a, leaky);

    EXPECT_DOUBLE_EQ(with_leak.energy,
                     base.energy + 1e-3 * with_leak.vdd * with_leak.time_ps);
    EXPECT_DOUBLE_EQ(with_leak.time_ps, base.time_ps);
}

TEST(leakage, solver_still_optimal_under_leakage)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        auto inst = make_random_instance(3, 3, 3, seed * 17);
        // Meaningful leakage: comparable to ~20% of dynamic energy.
        const thread_metrics nominal = evaluate_thread(
            *inst.space, inst.input.workloads[0], *inst.input.error_models[0],
            inst.space->nominal_assignment(), inst.input.params);
        inst.input.params.leakage_power = 0.2 * nominal.energy / nominal.time_ps;

        const interval_solution poly = solve_synts_poly(inst.input);
        const interval_solution brute = solve_exhaustive(inst.input);
        ASSERT_NEAR(poly.weighted_cost, brute.weighted_cost,
                    1e-9 * brute.weighted_cost);
    }
}

TEST(leakage, discourages_slow_low_voltage_points)
{
    // With heavy leakage, stretching execution time costs energy, so the
    // energy-optimal assignment must not get slower when leakage is added.
    auto inst = make_random_instance(4, 5, 4, 77);
    inst.input.theta = 0.0; // pure energy objective
    const interval_solution lean = solve_synts_poly(inst.input);

    const thread_metrics nominal = evaluate_thread(
        *inst.space, inst.input.workloads[0], *inst.input.error_models[0],
        inst.space->nominal_assignment(), inst.input.params);
    inst.input.params.leakage_power = 2.0 * nominal.energy / nominal.time_ps;
    const interval_solution leaky = solve_synts_poly(inst.input);

    EXPECT_LE(leaky.exec_time_ps, lean.exec_time_ps * (1.0 + 1e-9));
}

// --- workload predictor -----------------------------------------------------

TEST(predictor, rejects_bad_construction)
{
    EXPECT_THROW(workload_predictor(0, 0.5), std::invalid_argument);
    EXPECT_THROW(workload_predictor(4, 0.0), std::invalid_argument);
    EXPECT_THROW(workload_predictor(4, 1.5), std::invalid_argument);
}

TEST(predictor, uses_fallback_before_history)
{
    workload_predictor predictor(2);
    const std::vector<thread_workload> fallback = {{1000, 1.0}, {2000, 2.0}};
    const auto prediction = predictor.predict(fallback);
    ASSERT_EQ(prediction.size(), 2u);
    EXPECT_EQ(prediction[0].instructions, 1000u);
    EXPECT_DOUBLE_EQ(prediction[1].cpi_base, 2.0);
    EXPECT_FALSE(predictor.has_history());
}

TEST(predictor, smoothing_one_repeats_last_observation)
{
    workload_predictor predictor(1, 1.0);
    const std::vector<thread_workload> first = {{500, 1.5}};
    const std::vector<thread_workload> second = {{900, 1.1}};
    predictor.observe(first);
    predictor.observe(second);
    const auto prediction = predictor.predict(first);
    EXPECT_EQ(prediction[0].instructions, 900u);
    EXPECT_DOUBLE_EQ(prediction[0].cpi_base, 1.1);
}

TEST(predictor, converges_on_stationary_workloads)
{
    workload_predictor predictor(2, 0.5);
    const std::vector<thread_workload> steady = {{4000, 1.3}, {2500, 2.2}};
    const std::vector<thread_workload> fallback = {{1, 1.0}, {1, 1.0}};
    for (int k = 0; k < 12; ++k) {
        (void)predictor.predict(fallback);
        predictor.observe(steady);
    }
    const auto prediction = predictor.predict(fallback);
    EXPECT_NEAR(static_cast<double>(prediction[0].instructions), 4000.0, 2.0);
    EXPECT_NEAR(prediction[1].cpi_base, 2.2, 1e-3);
    EXPECT_LT(predictor.last_error(), 0.01);
}

TEST(predictor, tracks_drifting_workloads)
{
    workload_predictor predictor(1, 0.6);
    const std::vector<thread_workload> fallback = {{1, 1.0}};
    double n = 1000.0;
    for (int k = 0; k < 20; ++k) {
        (void)predictor.predict(fallback);
        predictor.observe(std::vector<thread_workload>{
            {static_cast<std::uint64_t>(n), 1.0}});
        n *= 1.05;
    }
    const auto prediction = predictor.predict(fallback);
    // Prediction lags a drifting series but stays within ~15%.
    EXPECT_NEAR(static_cast<double>(prediction[0].instructions), n, 0.15 * n);
}

TEST(predictor, observe_rejects_wrong_thread_count)
{
    workload_predictor predictor(3);
    const std::vector<thread_workload> two = {{1, 1.0}, {2, 1.0}};
    EXPECT_THROW(predictor.observe(two), std::invalid_argument);
}

// --- critical sections -------------------------------------------------------

TEST(critical_sections, makespan_reduces_to_barrier_without_locks)
{
    auto inst = make_random_instance(4, 3, 3, 5);
    const std::vector<thread_assignment> nominal(4, inst.space->nominal_assignment());
    const interval_solution sol = evaluate_assignment(inst.input, nominal);
    const std::vector<double> no_locks(4, 0.0);
    EXPECT_DOUBLE_EQ(lock_aware_makespan(sol.metrics, no_locks), sol.exec_time_ps);
}

TEST(critical_sections, fully_serial_sums_everything)
{
    auto inst = make_random_instance(3, 2, 2, 7);
    const std::vector<thread_assignment> nominal(3, inst.space->nominal_assignment());
    const interval_solution sol = evaluate_assignment(inst.input, nominal);
    const std::vector<double> all_serial(3, 1.0);
    double total = 0.0;
    for (const auto& m : sol.metrics) {
        total += m.time_ps;
    }
    EXPECT_NEAR(lock_aware_makespan(sol.metrics, all_serial), total, 1e-9 * total);
}

TEST(critical_sections, makespan_monotone_in_serial_fraction)
{
    auto inst = make_random_instance(4, 3, 3, 9);
    const std::vector<thread_assignment> nominal(4, inst.space->nominal_assignment());
    const interval_solution sol = evaluate_assignment(inst.input, nominal);
    double previous = 0.0;
    for (const double s : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        const std::vector<double> fractions(4, s);
        const double makespan = lock_aware_makespan(sol.metrics, fractions);
        ASSERT_GE(makespan, previous - 1e-9);
        previous = makespan;
    }
}

TEST(critical_sections, rejects_bad_fractions)
{
    auto inst = make_random_instance(2, 2, 2, 11);
    const std::vector<thread_assignment> nominal(2, inst.space->nominal_assignment());
    const interval_solution sol = evaluate_assignment(inst.input, nominal);
    const std::vector<double> bad = {0.5, 1.5};
    EXPECT_THROW((void)lock_aware_makespan(sol.metrics, bad), std::invalid_argument);
    const std::vector<double> short_list = {0.5};
    EXPECT_THROW((void)lock_aware_makespan(sol.metrics, short_list),
                 std::invalid_argument);
}

class lock_solver_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(lock_solver_property, descent_close_to_exhaustive)
{
    auto inst = make_random_instance(3, 3, 3, GetParam() * 41 + 7);
    synts::util::xoshiro256 rng(GetParam());
    std::vector<double> fractions;
    for (std::size_t i = 0; i < 3; ++i) {
        fractions.push_back(rng.uniform(0.0, 0.5));
    }
    const lock_aware_solution brute =
        solve_lock_aware_exhaustive(inst.input, fractions);
    const lock_aware_solution descent = solve_lock_aware_descent(inst.input, fractions);
    // The descent heuristic must be within 3% of the exhaustive optimum.
    EXPECT_LE(descent.cost, brute.cost * 1.03 + 1e-9);
    EXPECT_GE(descent.cost, brute.cost - 1e-9);
}

TEST_P(lock_solver_property, descent_no_worse_than_barrier_seed)
{
    auto inst = make_random_instance(4, 4, 4, GetParam() * 13 + 3);
    synts::util::xoshiro256 rng(GetParam() + 100);
    std::vector<double> fractions;
    for (std::size_t i = 0; i < 4; ++i) {
        fractions.push_back(rng.uniform(0.0, 0.6));
    }
    const interval_solution barrier_seed = solve_synts_poly(inst.input);
    const double seed_cost =
        lock_aware_cost(barrier_seed, fractions, inst.input.theta);
    const lock_aware_solution descent = solve_lock_aware_descent(inst.input, fractions);
    EXPECT_LE(descent.cost, seed_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(seeds, lock_solver_property,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull));

TEST(critical_sections, lock_heavy_thread_gets_priority)
{
    // Two identical threads except thread 0 holds the lock for half its
    // instructions. The lock-aware optimum must not run thread 0 slower
    // than thread 1: shortening the serial part helps everyone.
    auto inst = make_random_instance(2, 4, 4, 99);
    inst.input.workloads[1] = inst.input.workloads[0];
    inst.curves[1] = std::make_unique<synthetic_error_curve>(0.9, 0.5, 0.02, 1.5);
    inst.curves[0] = std::make_unique<synthetic_error_curve>(0.9, 0.5, 0.02, 1.5);
    inst.input.error_models = {inst.curves[0].get(), inst.curves[1].get()};
    inst.input.theta = equal_weight_theta(inst.input) * 4.0; // speed matters

    const std::vector<double> fractions = {0.5, 0.0};
    const lock_aware_solution sol = solve_lock_aware_exhaustive(inst.input, fractions);
    EXPECT_LE(sol.solution.metrics[0].time_ps,
              sol.solution.metrics[1].time_ps * (1.0 + 1e-9));
}

} // namespace
