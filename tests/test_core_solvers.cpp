// Property tests for the optimizers: SynTS-Poly (Algorithm 1) must agree
// with exhaustive search (Lemma 4.2.1) and dominate every baseline in
// weighted cost, on randomized instances.

#include <gtest/gtest.h>

#include "core/solver.h"
#include "solver_fixtures.h"

namespace {

using namespace synts::core;
using synts::test::make_random_instance;

class solver_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(solver_property, poly_equals_exhaustive)
{
    for (const auto& [m, q, s] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{2, 2, 2},
          {3, 3, 2},
          {4, 2, 3},
          {2, 4, 4},
          {4, 3, 2}}) {
        auto inst = make_random_instance(m, q, s, GetParam() * 101 + m * 7 + q * 3 + s);
        const interval_solution poly = solve_synts_poly(inst.input);
        const interval_solution brute = solve_exhaustive(inst.input);
        ASSERT_NEAR(poly.weighted_cost, brute.weighted_cost,
                    1e-9 * std::max(1.0, brute.weighted_cost))
            << "M=" << m << " Q=" << q << " S=" << s;
    }
}

TEST_P(solver_property, poly_dominates_baselines)
{
    auto inst = make_random_instance(4, 4, 4, GetParam() * 31 + 5);
    const double optimal = solve_synts_poly(inst.input).weighted_cost;
    EXPECT_LE(optimal, solve_per_core_ts(inst.input).weighted_cost + 1e-9);
    EXPECT_LE(optimal, solve_no_ts(inst.input).weighted_cost + 1e-9);
    EXPECT_LE(optimal, nominal_solution(inst.input).weighted_cost + 1e-9);
}

TEST_P(solver_property, no_ts_dominates_nominal)
{
    // Nominal is a member of the No-TS search space.
    auto inst = make_random_instance(4, 4, 3, GetParam() * 17 + 2);
    EXPECT_LE(solve_no_ts(inst.input).weighted_cost,
              nominal_solution(inst.input).weighted_cost + 1e-9);
}

TEST_P(solver_property, no_ts_never_speculates)
{
    auto inst = make_random_instance(4, 3, 4, GetParam() * 13 + 3);
    const interval_solution sol = solve_no_ts(inst.input);
    for (const auto& a : sol.assignments) {
        EXPECT_EQ(a.tsr_index, inst.space->tsr_count() - 1);
    }
    for (const auto& m : sol.metrics) {
        EXPECT_DOUBLE_EQ(m.tsr, 1.0);
    }
}

TEST_P(solver_property, exec_time_non_increasing_in_theta)
{
    auto inst = make_random_instance(4, 4, 4, GetParam() * 7 + 1);
    const double base_theta = inst.input.theta;
    double previous_time = 1e300;
    for (const double multiplier : {0.1, 0.5, 1.0, 5.0, 25.0}) {
        inst.input.theta = base_theta * multiplier;
        const interval_solution sol = solve_synts_poly(inst.input);
        ASSERT_LE(sol.exec_time_ps, previous_time * (1.0 + 1e-9));
        previous_time = sol.exec_time_ps;
    }
}

TEST_P(solver_property, energy_non_decreasing_in_theta)
{
    auto inst = make_random_instance(4, 4, 4, GetParam() * 19 + 11);
    const double base_theta = inst.input.theta;
    double previous_energy = -1.0;
    for (const double multiplier : {0.1, 0.5, 1.0, 5.0, 25.0}) {
        inst.input.theta = base_theta * multiplier;
        const interval_solution sol = solve_synts_poly(inst.input);
        ASSERT_GE(sol.total_energy, previous_energy - 1e-9);
        previous_energy = sol.total_energy;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, solver_property,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull,
                                           8ull));

TEST(solvers, per_core_ts_optimizes_each_thread_independently)
{
    auto inst = make_random_instance(3, 3, 3, 99);
    const interval_solution sol = solve_per_core_ts(inst.input);
    // No other config of thread 0 can improve its own en + theta * t.
    const auto& chosen = sol.assignments[0];
    const double chosen_cost =
        sol.metrics[0].energy + inst.input.theta * sol.metrics[0].time_ps;
    for (std::size_t j = 0; j < inst.space->voltage_count(); ++j) {
        for (std::size_t k = 0; k < inst.space->tsr_count(); ++k) {
            const thread_metrics m =
                evaluate_thread(*inst.space, inst.input.workloads[0],
                                *inst.input.error_models[0], thread_assignment{j, k},
                                inst.input.params);
            const double cost = m.energy + inst.input.theta * m.time_ps;
            ASSERT_GE(cost, chosen_cost - 1e-9) << j << "," << k;
        }
    }
    (void)chosen;
}

TEST(solvers, nominal_runs_everything_at_v0_r1)
{
    auto inst = make_random_instance(4, 3, 3, 123);
    const interval_solution sol = nominal_solution(inst.input);
    for (const auto& m : sol.metrics) {
        EXPECT_DOUBLE_EQ(m.vdd, inst.space->voltage(0));
        EXPECT_DOUBLE_EQ(m.tsr, 1.0);
    }
}

TEST(solvers, exhaustive_guards_search_space)
{
    auto inst = make_random_instance(10, 7, 6, 5);
    EXPECT_THROW((void)solve_exhaustive(inst.input, 1000), std::invalid_argument);
}

TEST(solvers, synts_exploits_heterogeneity)
{
    // Two threads with equal work: one error-prone, one error-free. SynTS
    // should not give both the same voltage: the clean thread can afford a
    // deeper speculation or lower voltage.
    auto inst = make_random_instance(2, 4, 4, 42);
    // Overwrite curves: thread 0 noisy, thread 1 clean.
    inst.curves[0] = std::make_unique<synthetic_error_curve>(0.98, 0.5, 0.4, 1.0);
    inst.curves[1] = std::make_unique<synthetic_error_curve>(0.55, 0.4, 0.001, 1.0);
    inst.input.error_models = {inst.curves[0].get(), inst.curves[1].get()};
    inst.input.workloads[0] = inst.input.workloads[1];
    inst.input.theta = equal_weight_theta(inst.input);

    const interval_solution sol = solve_synts_poly(inst.input);
    // The clean thread must speculate at least as deep as the noisy one.
    EXPECT_LE(sol.metrics[1].tsr, sol.metrics[0].tsr + 1e-12);
    // And the joint solution beats per-core TS.
    EXPECT_LE(sol.weighted_cost, solve_per_core_ts(inst.input).weighted_cost + 1e-9);
}

} // namespace
