// Tests for core/online_estimator: the Section 4.3 sampling phase.

#include <gtest/gtest.h>

#include "core/online_estimator.h"
#include "util/rng.h"

namespace {

using namespace synts::core;

/// Builds a synthetic interval characterization whose sampling-corner
/// delays follow a known exceedance curve: a `heavy_fraction` of vectors
/// carry delay 0.95 * tnom, the rest 0.3 * tnom. Every instruction drives
/// the stage.
interval_characterization make_interval(std::size_t instructions, double heavy_fraction,
                                        double tnom, std::uint64_t seed)
{
    interval_characterization data;
    data.instruction_count = instructions;
    synts::util::xoshiro256 rng(seed);
    for (std::size_t n = 0; n < instructions; ++n) {
        const double delay = rng.bernoulli(heavy_fraction) ? 0.95 * tnom : 0.3 * tnom;
        data.sampling_delays_ps.push_back(static_cast<float>(delay));
        data.sampling_instr_index.push_back(static_cast<std::uint32_t>(n));
        ++data.vector_count;
    }
    // Histograms are unused by the estimator but required by other users;
    // fill corner 0 minimally.
    data.delay_histograms.emplace_back(0.0, tnom * 1.05, 64);
    for (const float d : data.sampling_delays_ps) {
        data.delay_histograms[0].add(static_cast<double>(d));
    }
    return data;
}

config_space make_space(double tnom)
{
    return config_space::paper_grid(std::vector<double>{
        tnom, tnom * 1.13, tnom * 1.27, tnom * 1.39, tnom * 1.63, tnom * 2.21,
        tnom * 2.63});
}

TEST(estimated_curve, interpolates_and_clamps)
{
    const estimated_error_curve curve({0.6, 0.8, 1.0}, {0.3, 0.1, 0.0});
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 0.6), 0.3);
    EXPECT_DOUBLE_EQ(curve.error_probability(3, 0.6), 0.3); // voltage ignored
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 0.7), 0.2);
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 0.5), 0.3);  // clamp low
    EXPECT_DOUBLE_EQ(curve.error_probability(0, 1.1), 0.0);  // clamp high
}

TEST(estimated_curve, rejects_mismatched_arrays)
{
    EXPECT_THROW(estimated_error_curve({0.5, 1.0}, {0.1}), std::invalid_argument);
    EXPECT_THROW(estimated_error_curve({}, {}), std::invalid_argument);
}

TEST(online_estimator, rejects_bad_config)
{
    sampling_config cfg;
    cfg.sample_fraction = 0.0;
    EXPECT_THROW(online_estimator{cfg}, std::invalid_argument);
    cfg.sample_fraction = 1.5;
    EXPECT_THROW(online_estimator{cfg}, std::invalid_argument);
}

TEST(online_estimator, estimates_step_exceedance_curve)
{
    const double tnom = 1000.0;
    const config_space space = make_space(tnom);
    const double heavy = 0.08;
    const auto data = make_interval(60000, heavy, tnom, 5);

    sampling_config cfg;
    cfg.sample_fraction = 0.5; // large sample for a tight estimate
    const online_estimator estimator(cfg);
    synts::energy::energy_params params;
    const sampling_result result = estimator.sample_interval(space, data, 1.2, params);

    // Heavy vectors (0.95 tnom) error at r in {0.64 .. 0.928}; nothing
    // errors at r = 1.
    for (std::size_t k = 0; k + 1 < space.tsr_count(); ++k) {
        EXPECT_NEAR(result.err_estimates[k], heavy, 0.02) << "level " << k;
    }
    EXPECT_NEAR(result.err_estimates.back(), 0.0, 1e-12);
}

TEST(online_estimator, estimates_are_monotone_non_increasing)
{
    const double tnom = 500.0;
    const config_space space = make_space(tnom);
    const auto data = make_interval(20000, 0.05, tnom, 7);
    const online_estimator estimator;
    synts::energy::energy_params params;
    const sampling_result result = estimator.sample_interval(space, data, 1.0, params);
    for (std::size_t k = 1; k < result.err_estimates.size(); ++k) {
        ASSERT_LE(result.err_estimates[k], result.err_estimates[k - 1] + 1e-12);
    }
}

TEST(online_estimator, sampled_instruction_budget)
{
    const double tnom = 500.0;
    const config_space space = make_space(tnom);
    const auto data = make_interval(10000, 0.05, tnom, 9);
    sampling_config cfg;
    cfg.sample_fraction = 0.1;
    const online_estimator estimator(cfg);
    synts::energy::energy_params params;
    const sampling_result result = estimator.sample_interval(space, data, 1.0, params);
    EXPECT_EQ(result.sampled_instructions, 1000u);
    std::uint64_t total = 0;
    for (const auto n : result.instructions) {
        total += n;
    }
    EXPECT_EQ(total, result.sampled_instructions);
}

TEST(online_estimator, respects_min_sample_floor)
{
    const double tnom = 500.0;
    const config_space space = make_space(tnom);
    const auto data = make_interval(2000, 0.05, tnom, 11);
    sampling_config cfg;
    cfg.sample_fraction = 0.01; // would be 20 instructions
    cfg.min_sample_instructions = 600;
    const online_estimator estimator(cfg);
    synts::energy::energy_params params;
    const sampling_result result = estimator.sample_interval(space, data, 1.0, params);
    EXPECT_EQ(result.sampled_instructions, 600u);
}

TEST(online_estimator, sampling_costs_positive_and_scale)
{
    const double tnom = 500.0;
    const config_space space = make_space(tnom);
    const auto data = make_interval(50000, 0.05, tnom, 13);
    synts::energy::energy_params params;

    sampling_config small;
    small.sample_fraction = 0.05;
    sampling_config large;
    large.sample_fraction = 0.20;
    const sampling_result a = online_estimator(small).sample_interval(space, data, 1.0,
                                                                      params);
    const sampling_result b = online_estimator(large).sample_interval(space, data, 1.0,
                                                                      params);
    EXPECT_GT(a.sampling_time_ps, 0.0);
    EXPECT_GT(a.sampling_energy, 0.0);
    EXPECT_GT(b.sampling_time_ps, 2.0 * a.sampling_time_ps);
    EXPECT_GT(b.sampling_energy, 2.0 * a.sampling_energy);
}

TEST(online_estimator, estimation_improves_with_sample_size)
{
    const double tnom = 800.0;
    const config_space space = make_space(tnom);
    const double heavy = 0.06;

    auto estimate_error = [&](double fraction, std::uint64_t seed) {
        const auto data = make_interval(40000, heavy, tnom, seed);
        sampling_config cfg;
        cfg.sample_fraction = fraction;
        const online_estimator estimator(cfg);
        synts::energy::energy_params params;
        const sampling_result result = estimator.sample_interval(space, data, 1.0,
                                                                 params);
        // Average absolute estimation error over the speculative levels.
        double total = 0.0;
        for (std::size_t k = 0; k + 1 < space.tsr_count(); ++k) {
            total += std::abs(result.err_estimates[k] - heavy);
        }
        return total / static_cast<double>(space.tsr_count() - 1);
    };

    double small_error = 0.0;
    double large_error = 0.0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        small_error += estimate_error(0.02, 100 + seed);
        large_error += estimate_error(0.60, 200 + seed);
    }
    EXPECT_LT(large_error, small_error);
}

TEST(online_estimator, requires_sampling_trace)
{
    const double tnom = 500.0;
    const config_space space = make_space(tnom);
    interval_characterization data = make_interval(1000, 0.05, tnom, 15);
    data.sampling_instr_index.pop_back(); // corrupt alignment
    const online_estimator estimator;
    synts::energy::energy_params params;
    EXPECT_THROW((void)estimator.sample_interval(space, data, 1.0, params),
                 std::invalid_argument);
}

} // namespace
