// Tests for arch/stage_taps: stage drive rules and bit encodings.

#include <gtest/gtest.h>

#include <memory>

#include "arch/stage_taps.h"

namespace {

using namespace synts::arch;
using synts::circuit::build_stage;
using synts::circuit::pipe_stage;

micro_op op_with(op_class cls)
{
    micro_op op;
    op.cls = cls;
    op.encoding = 0xABCD1234;
    op.operand_a = 0x1122334455667788ull;
    op.operand_b = 0x99AABBCCDDEEFF00ull;
    return op;
}

TEST(stage_taps, decode_accepts_everything)
{
    const auto stage = build_stage(pipe_stage::decode);
    const stage_tap tap(pipe_stage::decode, stage.layout);
    EXPECT_EQ(tap.width(), 32u);
    for (std::size_t c = 0; c < op_class_count; ++c) {
        EXPECT_TRUE(tap.drives_stage(op_with(static_cast<op_class>(c))));
    }
}

TEST(stage_taps, simple_alu_drive_rules)
{
    const auto stage = build_stage(pipe_stage::simple_alu);
    const stage_tap tap(pipe_stage::simple_alu, stage.layout);
    EXPECT_EQ(tap.width(), 67u);
    EXPECT_TRUE(tap.drives_stage(op_with(op_class::int_add)));
    EXPECT_TRUE(tap.drives_stage(op_with(op_class::int_sub)));
    EXPECT_TRUE(tap.drives_stage(op_with(op_class::int_logic)));
    EXPECT_FALSE(tap.drives_stage(op_with(op_class::int_mul)));
    EXPECT_FALSE(tap.drives_stage(op_with(op_class::load)));
    EXPECT_FALSE(tap.drives_stage(op_with(op_class::branch)));
}

TEST(stage_taps, complex_alu_drive_rules)
{
    const auto stage = build_stage(pipe_stage::complex_alu);
    const stage_tap tap(pipe_stage::complex_alu, stage.layout);
    EXPECT_EQ(tap.width(), 32u);
    EXPECT_TRUE(tap.drives_stage(op_with(op_class::int_mul)));
    EXPECT_FALSE(tap.drives_stage(op_with(op_class::int_add)));
}

TEST(stage_taps, decode_bits_mirror_encoding)
{
    const auto stage = build_stage(pipe_stage::decode);
    const stage_tap tap(pipe_stage::decode, stage.layout);
    const micro_op op = op_with(op_class::load);
    auto storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(storage.get(), tap.width());
    ASSERT_TRUE(tap.extract(op, bits));
    for (std::size_t i = 0; i < 32; ++i) {
        ASSERT_EQ(bits[i], ((op.encoding >> i) & 1) != 0);
    }
}

TEST(stage_taps, simple_alu_operand_bits)
{
    const auto stage = build_stage(pipe_stage::simple_alu);
    const stage_tap tap(pipe_stage::simple_alu, stage.layout);
    const micro_op op = op_with(op_class::int_add);
    auto storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(storage.get(), tap.width());
    ASSERT_TRUE(tap.extract(op, bits));
    for (std::size_t i = 0; i < 32; ++i) {
        ASSERT_EQ(bits[i], ((op.operand_a >> i) & 1) != 0);
        ASSERT_EQ(bits[32 + i], ((op.operand_b >> i) & 1) != 0);
    }
    // int_add: all select bits zero.
    EXPECT_FALSE(bits[64]);
    EXPECT_FALSE(bits[65]);
    EXPECT_FALSE(bits[66]);
}

TEST(stage_taps, simple_alu_subtract_sets_bit0)
{
    const auto stage = build_stage(pipe_stage::simple_alu);
    const stage_tap tap(pipe_stage::simple_alu, stage.layout);
    const micro_op op = op_with(op_class::int_sub);
    auto storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(storage.get(), tap.width());
    ASSERT_TRUE(tap.extract(op, bits));
    EXPECT_TRUE(bits[64]);
}

TEST(stage_taps, logic_variant_nonzero_select)
{
    const auto stage = build_stage(pipe_stage::simple_alu);
    const stage_tap tap(pipe_stage::simple_alu, stage.layout);
    micro_op op = op_with(op_class::int_logic);
    auto storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(storage.get(), tap.width());
    ASSERT_TRUE(tap.extract(op, bits));
    EXPECT_FALSE(bits[64]); // not a subtract
    EXPECT_TRUE(bits[65] || bits[66]); // selects a logic function
}

TEST(stage_taps, extract_rejects_non_driving_op)
{
    const auto stage = build_stage(pipe_stage::complex_alu);
    const stage_tap tap(pipe_stage::complex_alu, stage.layout);
    auto storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(storage.get(), tap.width());
    EXPECT_FALSE(tap.extract(op_with(op_class::load), bits));
}

TEST(stage_taps, extract_rejects_wrong_width)
{
    const auto stage = build_stage(pipe_stage::decode);
    const stage_tap tap(pipe_stage::decode, stage.layout);
    auto storage = std::make_unique<bool[]>(8);
    const std::span<bool> wrong(storage.get(), 8);
    EXPECT_FALSE(tap.extract(op_with(op_class::load), wrong));
}

} // namespace
