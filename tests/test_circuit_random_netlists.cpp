// Property tests over randomly generated netlists: for arbitrary DAGs of
// library cells, (1) functional simulation must match an independent
// reference evaluation, (2) STA must upper-bound every dynamic sensitized
// delay, and (3) repeating a vector must produce zero delay. This covers
// the circuit substrate well beyond the hand-written stage generators.

#include <gtest/gtest.h>

#include <memory>

#include "circuit/netlist_builder.h"
#include "circuit/sta.h"
#include "helpers.h"
#include "util/rng.h"

namespace {

using namespace synts::circuit;
using synts::util::xoshiro256;

/// Builds a random combinational DAG with `inputs` primary inputs and
/// `gates` gates drawn from the combinational cell classes; ~20% of nets
/// are marked primary outputs (plus the last net, so there is always one).
netlist make_random_netlist(std::size_t inputs, std::size_t gates, xoshiro256& rng)
{
    static constexpr std::array<cell_kind, 15> kinds = {
        cell_kind::buf,   cell_kind::inv,   cell_kind::and2,  cell_kind::or2,
        cell_kind::nand2, cell_kind::nor2,  cell_kind::xor2,  cell_kind::xnor2,
        cell_kind::and3,  cell_kind::or3,   cell_kind::nand3, cell_kind::nor3,
        cell_kind::aoi21, cell_kind::oai21, cell_kind::mux2};

    netlist nl("random");
    std::vector<net_id> nets;
    for (std::size_t i = 0; i < inputs; ++i) {
        nets.push_back(nl.add_input("in" + std::to_string(i)));
    }
    for (std::size_t g = 0; g < gates; ++g) {
        const cell_kind kind = kinds[rng.uniform_below(kinds.size())];
        const std::size_t arity = cell_input_count(kind);
        std::array<net_id, 3> chosen{};
        for (std::size_t p = 0; p < arity; ++p) {
            chosen[p] = nets[rng.uniform_below(nets.size())];
        }
        nets.push_back(nl.add_gate(kind, std::span<const net_id>(chosen.data(), arity)));
    }
    std::size_t outputs = 0;
    for (const net_id net : nets) {
        if (net >= inputs && rng.bernoulli(0.2)) {
            nl.mark_output("out" + std::to_string(outputs++), net);
        }
    }
    nl.mark_output("out_last", nets.back());
    nl.validate();
    return nl;
}

/// Independent reference evaluation: direct recursive evaluation over the
/// gate list (no event machinery shared with the simulator under test).
std::vector<bool> reference_eval(const netlist& nl, std::span<const bool> inputs)
{
    std::vector<bool> values(nl.net_count(), false);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        values[i] = inputs[i];
    }
    for (const auto& g : nl.gates()) {
        bool in_bits[3] = {false, false, false};
        for (std::size_t p = 0; p < g.input_count; ++p) {
            in_bits[p] = values[g.inputs[p]];
        }
        values[g.output] =
            evaluate_cell(g.kind, std::span<const bool>(in_bits, g.input_count));
    }
    std::vector<bool> outputs;
    outputs.reserve(nl.output_count());
    for (std::size_t o = 0; o < nl.output_count(); ++o) {
        outputs.push_back(values[nl.output_net(o)]);
    }
    return outputs;
}

class random_netlists : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(random_netlists, functional_sim_matches_reference)
{
    xoshiro256 rng(GetParam());
    const std::size_t inputs = 4 + rng.uniform_below(12);
    const std::size_t gates = 20 + rng.uniform_below(200);
    const netlist nl = make_random_netlist(inputs, gates, rng);

    synts::test::netlist_evaluator eval(nl);
    auto bits = std::make_unique<bool[]>(inputs);
    for (int round = 0; round < 50; ++round) {
        for (std::size_t i = 0; i < inputs; ++i) {
            bits[i] = rng.bernoulli(0.5);
        }
        const std::span<const bool> in(bits.get(), inputs);
        (void)eval.step(in);
        const auto expected = reference_eval(nl, in);
        for (std::size_t o = 0; o < expected.size(); ++o) {
            ASSERT_EQ(eval.read_output(o), expected[o])
                << "seed " << GetParam() << " round " << round << " output " << o;
        }
    }
}

TEST_P(random_netlists, sta_bounds_dynamic_delay)
{
    xoshiro256 rng(GetParam() ^ 0xABCD);
    const std::size_t inputs = 4 + rng.uniform_below(10);
    const std::size_t gates = 20 + rng.uniform_below(300);
    const netlist nl = make_random_netlist(inputs, gates, rng);

    synts::test::netlist_evaluator eval(nl);
    const double critical = eval.nominal_period_ps();
    auto bits = std::make_unique<bool[]>(inputs);
    for (int round = 0; round < 100; ++round) {
        for (std::size_t i = 0; i < inputs; ++i) {
            bits[i] = rng.bernoulli(0.5);
        }
        const double delay = eval.step(std::span<const bool>(bits.get(), inputs));
        ASSERT_LE(delay, critical + 1e-9) << "seed " << GetParam();
        ASSERT_GE(delay, 0.0);
    }
}

TEST_P(random_netlists, repeated_vector_has_zero_delay)
{
    xoshiro256 rng(GetParam() ^ 0x1234);
    const netlist nl = make_random_netlist(6, 80, rng);
    synts::test::netlist_evaluator eval(nl);
    auto bits = std::make_unique<bool[]>(nl.input_count());
    for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < nl.input_count(); ++i) {
            bits[i] = rng.bernoulli(0.5);
        }
        const std::span<const bool> in(bits.get(), nl.input_count());
        (void)eval.step(in);
        ASSERT_DOUBLE_EQ(eval.step(in), 0.0);
    }
}

TEST_P(random_netlists, sta_critical_path_is_connected_and_maximal)
{
    xoshiro256 rng(GetParam() ^ 0x77);
    const netlist nl = make_random_netlist(5, 150, rng);
    const cell_library lib = cell_library::standard_22nm();
    const static_timing_analyzer sta(nl);
    const timing_report report = sta.analyze_nominal(lib);

    // Connectivity of the recovered path.
    const auto gates = nl.gates();
    for (std::size_t i = 1; i < report.critical_path.size(); ++i) {
        const gate& prev = gates[report.critical_path[i - 1]];
        const gate& cur = gates[report.critical_path[i]];
        bool connected = false;
        for (std::size_t p = 0; p < cur.input_count; ++p) {
            connected = connected || cur.inputs[p] == prev.output;
        }
        ASSERT_TRUE(connected);
    }
    // Maximality: no primary output arrives later than the reported delay.
    for (const net_id out : nl.output_nets()) {
        ASSERT_LE(report.arrival_ps[out], report.critical_delay_ps + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_netlists,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull, 66ull,
                                           77ull, 88ull));

} // namespace
