// Functional correctness of the structural netlist generators: the adders,
// decoder, PLA, multiplier, and the three pipe stages must compute exactly
// what their reference arithmetic says, on randomized vectors.

#include <gtest/gtest.h>

#include "circuit/netlist_builder.h"
#include "helpers.h"
#include "util/rng.h"

namespace {

using namespace synts::circuit;
using synts::test::netlist_evaluator;
using synts::util::xoshiro256;

class adder_widths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(adder_widths, ripple_adder_matches_reference)
{
    const std::size_t width = GetParam();
    netlist nl("adder");
    const auto a = nl.add_input_bus("a", width);
    const auto b = nl.add_input_bus("b", width);
    const auto cin = nl.add_input("cin");
    const auto sum = add_ripple_adder(nl, a, b, cin);
    nl.mark_output_bus("sum", sum.sum);
    nl.mark_output("cout", sum.carry_out);
    nl.validate();

    netlist_evaluator eval(nl);
    xoshiro256 rng(width * 77);
    const std::uint64_t mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    for (int round = 0; round < 200; ++round) {
        const std::uint64_t av = rng() & mask;
        const std::uint64_t bv = rng() & mask;
        const std::uint64_t cv = rng() & 1;
        const std::array<std::pair<std::uint64_t, std::size_t>, 3> fields = {
            {{av, width}, {bv, width}, {cv, 1}}};
        eval.step_fields(fields);
        const std::uint64_t expected = av + bv + cv;
        ASSERT_EQ(eval.read_outputs(0, width), expected & mask);
        ASSERT_EQ(eval.read_output(width), ((expected >> width) & 1) != 0);
    }
}

TEST_P(adder_widths, kogge_stone_matches_ripple)
{
    const std::size_t width = GetParam();
    netlist nl("ks");
    const auto a = nl.add_input_bus("a", width);
    const auto b = nl.add_input_bus("b", width);
    const auto cin = nl.add_input("cin");
    const auto sum = add_kogge_stone_adder(nl, a, b, cin);
    nl.mark_output_bus("sum", sum.sum);
    nl.mark_output("cout", sum.carry_out);
    nl.validate();

    netlist_evaluator eval(nl);
    xoshiro256 rng(width * 131);
    const std::uint64_t mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    for (int round = 0; round < 200; ++round) {
        const std::uint64_t av = rng() & mask;
        const std::uint64_t bv = rng() & mask;
        const std::uint64_t cv = rng() & 1;
        const std::array<std::pair<std::uint64_t, std::size_t>, 3> fields = {
            {{av, width}, {bv, width}, {cv, 1}}};
        eval.step_fields(fields);
        const std::uint64_t expected = av + bv + cv;
        ASSERT_EQ(eval.read_outputs(0, width), expected & mask);
        ASSERT_EQ(eval.read_output(width), ((expected >> width) & 1) != 0);
    }
}

INSTANTIATE_TEST_SUITE_P(widths, adder_widths, ::testing::Values(1, 2, 3, 8, 16, 32));

TEST(kogge_stone, log_depth_smaller_sta_than_ripple)
{
    netlist ripple("ripple");
    {
        const auto a = ripple.add_input_bus("a", 32);
        const auto b = ripple.add_input_bus("b", 32);
        const auto cin = ripple.add_input("cin");
        const auto sum = add_ripple_adder(ripple, a, b, cin);
        ripple.mark_output_bus("sum", sum.sum);
        ripple.mark_output("cout", sum.carry_out);
    }
    netlist ks("ks");
    {
        const auto a = ks.add_input_bus("a", 32);
        const auto b = ks.add_input_bus("b", 32);
        const auto cin = ks.add_input("cin");
        const auto sum = add_kogge_stone_adder(ks, a, b, cin);
        ks.mark_output_bus("sum", sum.sum);
        ks.mark_output("cout", sum.carry_out);
    }
    netlist_evaluator ripple_eval(ripple);
    netlist_evaluator ks_eval(ks);
    EXPECT_LT(ks_eval.nominal_period_ps(), 0.5 * ripple_eval.nominal_period_ps());
}

class decoder_widths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(decoder_widths, one_hot_output_matches_select)
{
    const std::size_t width = GetParam();
    netlist nl("dec");
    const auto sel = nl.add_input_bus("sel", width);
    const auto outs = add_decoder(nl, sel);
    nl.mark_output_bus("onehot", outs);
    nl.validate();

    netlist_evaluator eval(nl);
    const std::size_t out_count = std::size_t{1} << width;
    for (std::uint64_t code = 0; code < out_count; ++code) {
        const std::array<std::pair<std::uint64_t, std::size_t>, 1> fields = {
            {{code, width}}};
        eval.step_fields(fields);
        const std::uint64_t value = eval.read_outputs(0, out_count);
        ASSERT_EQ(value, std::uint64_t{1} << code) << "code=" << code;
    }
}

INSTANTIATE_TEST_SUITE_P(widths, decoder_widths, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(trees, or_tree_and_and_tree)
{
    netlist nl("trees");
    const auto in = nl.add_input_bus("in", 9);
    const auto any = add_or_tree(nl, in);
    const auto all = add_and_tree(nl, in);
    nl.mark_output("any", any);
    nl.mark_output("all", all);
    nl.validate();

    netlist_evaluator eval(nl);
    xoshiro256 rng(3);
    for (int round = 0; round < 100; ++round) {
        const std::uint64_t v = rng() & 0x1FF;
        const std::array<std::pair<std::uint64_t, std::size_t>, 1> fields = {{{v, 9}}};
        eval.step_fields(fields);
        ASSERT_EQ(eval.read_output(0), v != 0);
        ASSERT_EQ(eval.read_output(1), v == 0x1FF);
    }
}

TEST(control_pla, deterministic_in_seed)
{
    netlist a("pla_a");
    netlist b("pla_b");
    for (netlist* nl : {&a, &b}) {
        const auto in = nl->add_input_bus("in", 8);
        const auto outs = add_control_pla(*nl, in, 6, 3, 0x1234);
        nl->mark_output_bus("ctl", outs);
    }
    ASSERT_EQ(a.gate_count(), b.gate_count());
    for (std::size_t g = 0; g < a.gate_count(); ++g) {
        ASSERT_EQ(a.gates()[g].kind, b.gates()[g].kind);
        ASSERT_EQ(a.gates()[g].inputs, b.gates()[g].inputs);
    }
}

TEST(control_pla, different_seed_differs)
{
    netlist a("pla_a");
    netlist b("pla_b");
    const auto ia = a.add_input_bus("in", 8);
    const auto ib = b.add_input_bus("in", 8);
    (void)add_control_pla(a, ia, 6, 3, 1);
    (void)add_control_pla(b, ib, 6, 3, 2);
    bool any_difference = a.gate_count() != b.gate_count();
    for (std::size_t g = 0; !any_difference && g < a.gate_count(); ++g) {
        any_difference = a.gates()[g].inputs != b.gates()[g].inputs;
    }
    EXPECT_TRUE(any_difference);
}

TEST(complex_alu, multiplier_matches_reference)
{
    const stage_netlist stage = build_complex_alu();
    netlist_evaluator eval(stage.nl);
    xoshiro256 rng(17);
    for (int round = 0; round < 300; ++round) {
        const std::uint64_t a = rng() & 0xFFFF;
        const std::uint64_t b = rng() & 0xFFFF;
        const std::array<std::pair<std::uint64_t, std::size_t>, 2> fields = {
            {{a, 16}, {b, 16}}};
        eval.step_fields(fields);
        ASSERT_EQ(eval.read_outputs(0, 32), a * b) << a << " * " << b;
    }
}

TEST(simple_alu, add_sub_logic_match_reference)
{
    const stage_netlist stage = build_simple_alu();
    netlist_evaluator eval(stage.nl);
    xoshiro256 rng(23);

    // Output layout: result[0..31], carry_out, zero.
    constexpr std::uint64_t mask = 0xFFFFFFFFull;
    struct op_case {
        std::uint64_t select;
        std::uint64_t (*compute)(std::uint64_t, std::uint64_t);
    };
    const op_case cases[] = {
        {0b000, [](std::uint64_t a, std::uint64_t b) { return (a + b) & mask; }},
        {0b001, [](std::uint64_t a, std::uint64_t b) { return (a - b) & mask; }},
        {0b010, [](std::uint64_t a, std::uint64_t b) { return a & b; }},
        {0b100, [](std::uint64_t a, std::uint64_t b) { return a | b; }},
        {0b110, [](std::uint64_t a, std::uint64_t b) { return a ^ b; }},
    };
    for (const auto& c : cases) {
        for (int round = 0; round < 100; ++round) {
            const std::uint64_t a = rng() & mask;
            const std::uint64_t b = rng() & mask;
            const std::array<std::pair<std::uint64_t, std::size_t>, 3> fields = {
                {{a, 32}, {b, 32}, {c.select, 3}}};
            eval.step_fields(fields);
            const std::uint64_t expected = c.compute(a, b);
            ASSERT_EQ(eval.read_outputs(0, 32), expected)
                << "select=" << c.select << " a=" << a << " b=" << b;
            ASSERT_EQ(eval.read_output(33), expected == 0) << "zero flag";
        }
    }
}

TEST(simple_alu, carry_out_add)
{
    const stage_netlist stage = build_simple_alu();
    netlist_evaluator eval(stage.nl);
    const std::array<std::pair<std::uint64_t, std::size_t>, 3> overflow_fields = {
        {{0xFFFFFFFFull, 32}, {1, 32}, {0, 3}}};
    eval.step_fields(overflow_fields);
    EXPECT_TRUE(eval.read_output(32));
    const std::array<std::pair<std::uint64_t, std::size_t>, 3> no_carry = {
        {{5, 32}, {6, 32}, {0, 3}}};
    eval.step_fields(no_carry);
    EXPECT_FALSE(eval.read_output(32));
}

TEST(decode_stage, one_hot_fields_and_hazard_flag)
{
    const stage_netlist stage = build_decode_stage();
    netlist_evaluator eval(stage.nl);

    // Output layout: opcode_1h[64], rs_1h[32], rt_1h[32], ctl[24],
    // imm_ext[32], fwd_en[16], same_register.
    const std::size_t opcode_base = 0;
    const std::size_t rs_base = 64;
    const std::size_t rt_base = 96;
    const std::size_t same_register_index = 64 + 32 + 32 + 24 + 32 + 16;

    xoshiro256 rng(31);
    for (int round = 0; round < 200; ++round) {
        const std::uint32_t opcode = static_cast<std::uint32_t>(rng.uniform_below(64));
        const std::uint32_t rs = static_cast<std::uint32_t>(rng.uniform_below(32));
        const std::uint32_t rt = static_cast<std::uint32_t>(rng.uniform_below(32));
        const std::uint32_t imm = static_cast<std::uint32_t>(rng.uniform_below(1u << 16));
        const std::uint32_t word =
            (opcode << 26) | (rs << 21) | (rt << 16) | (imm & 0xFFFF);
        const std::array<std::pair<std::uint64_t, std::size_t>, 1> fields = {
            {{word, 32}}};
        eval.step_fields(fields);
        ASSERT_EQ(eval.read_outputs(opcode_base, 64), std::uint64_t{1} << opcode);
        ASSERT_EQ(eval.read_outputs(rs_base, 32), std::uint64_t{1} << rs);
        ASSERT_EQ(eval.read_outputs(rt_base, 32), std::uint64_t{1} << rt);
        ASSERT_EQ(eval.read_output(same_register_index), rs == rt);
    }
}

TEST(stages, gate_counts_are_substantial)
{
    // The stages should look like synthesized logic, not toys.
    EXPECT_GT(build_decode_stage().nl.gate_count(), 400u);
    EXPECT_GT(build_simple_alu().nl.gate_count(), 400u);
    EXPECT_GT(build_complex_alu().nl.gate_count(), 1000u);
}

TEST(stages, build_stage_dispatch)
{
    EXPECT_EQ(build_stage(pipe_stage::decode).nl.name(), "decode");
    EXPECT_EQ(build_stage(pipe_stage::simple_alu).nl.name(), "simple_alu");
    EXPECT_EQ(build_stage(pipe_stage::complex_alu).nl.name(), "complex_alu");
    EXPECT_STREQ(pipe_stage_name(pipe_stage::decode), "Decode");
    EXPECT_STREQ(pipe_stage_name(pipe_stage::simple_alu), "SimpleALU");
    EXPECT_STREQ(pipe_stage_name(pipe_stage::complex_alu), "ComplexALU");
}

} // namespace
