// Tests for util/thread_safety.h + util/lock_rank.{h,cpp}: the annotated
// mutex wrappers and the debug lock-rank deadlock detector.
//
// The rank checks are compiled out in release builds (NDEBUG without
// SYNTS_FORCE_LOCK_RANK_CHECKS), so the detector-behavior tests gate on
// SYNTS_LOCK_RANK_CHECKS and reduce to plain locking smoke tests when off
// -- the suite passes in every build mode, and the TSan CI job forces the
// checks on (-DSYNTS_LOCK_RANK=ON) so the death tests run under
// ThreadSanitizer too.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <set>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "runtime/experiment_cache.h"
#include "runtime/speculator.h"
#include "runtime/thread_pool.h"
#include "util/cancellation.h"
#include "util/thread_safety.h"
#include "workload/registry.h"

namespace {

using synts::util::annotated_mutex;
using synts::util::annotated_shared_mutex;
using synts::util::cv_mutex_lock;
using synts::util::lock_rank;
using synts::util::lock_rank_name;
using synts::util::mutex_lock;
using synts::util::shared_mutex_lock;

TEST(util_lock_rank, every_table_rank_has_a_name)
{
    const lock_rank table[] = {
        lock_rank::speculator,     lock_rank::pool_sleep,
        lock_rank::pool_queue,     lock_rank::cache_shard,
        lock_rank::cancel_tree,    lock_rank::workload_registry,
        lock_rank::sampler_wake,   lock_rank::metrics_registry,
        lock_rank::sampler_series, lock_rank::health_events,
        lock_rank::trace_buffers,
    };
    std::set<const char*> names;
    for (const lock_rank rank : table) {
        const char* name = lock_rank_name(rank);
        ASSERT_NE(name, nullptr) << "unnamed rank " << static_cast<unsigned>(rank);
        names.insert(name);
    }
    EXPECT_EQ(names.size(), std::size(table)) << "duplicate rank names";
    EXPECT_EQ(lock_rank_name(static_cast<lock_rank>(9999)), nullptr);
}

TEST(util_lock_rank, correct_order_nesting_passes)
{
    annotated_mutex low(lock_rank::pool_sleep, "test.low");
    annotated_mutex mid(lock_rank::pool_queue, "test.mid");
    annotated_mutex high(lock_rank::cache_shard, "test.high");
    {
        const mutex_lock a(low);
        const mutex_lock b(mid);
        const mutex_lock c(high);
    }
    // Sequential re-acquisition at any rank is fine once the stack drains.
    {
        const mutex_lock c(high);
    }
    {
        const mutex_lock a(low);
    }
#if SYNTS_LOCK_RANK_CHECKS
    EXPECT_EQ(synts::util::lock_rank_detail::held_count(), 0u);
#endif
}

TEST(util_lock_rank, try_lock_participates_in_rank_tracking)
{
    annotated_mutex low(lock_rank::pool_sleep, "test.try_low");
    annotated_mutex high(lock_rank::cache_shard, "test.try_high");
    ASSERT_TRUE(low.try_lock());
#if SYNTS_LOCK_RANK_CHECKS
    EXPECT_EQ(synts::util::lock_rank_detail::held_count(), 1u);
#endif
    ASSERT_TRUE(high.try_lock());
    high.unlock();
    low.unlock();
#if SYNTS_LOCK_RANK_CHECKS
    EXPECT_EQ(synts::util::lock_rank_detail::held_count(), 0u);
#endif
}

TEST(util_lock_rank, shared_mutex_readers_exclude_writer)
{
    annotated_shared_mutex rw(lock_rank::cache_shard, "test.rw");
    std::atomic<int> readers{0};
    std::atomic<bool> writer_done{false};
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int i = 0; i < 3; ++i) {
        threads.emplace_back([&] {
            for (int n = 0; n < 200; ++n) {
                const shared_mutex_lock lock(rw);
                readers.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    threads.emplace_back([&] {
        for (int n = 0; n < 100; ++n) {
            rw.lock();
            rw.unlock();
        }
        writer_done.store(true, std::memory_order_relaxed);
    });
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_EQ(readers.load(), 600);
    EXPECT_TRUE(writer_done.load());
}

TEST(util_lock_rank, condition_variable_wait_keeps_stack_balanced)
{
    annotated_mutex gate(lock_rank::sampler_wake, "test.cv_gate");
    std::condition_variable_any cv;
    bool ready = false;
    std::thread signaller([&] {
        const mutex_lock lock(gate);
        ready = true;
        cv.notify_one();
    });
    {
        cv_mutex_lock lock(gate);
        while (!ready) {
            cv.wait(lock);
        }
        // The cv released and reacquired through the guard; the rank stack
        // must reflect exactly one held lock here.
#if SYNTS_LOCK_RANK_CHECKS
        EXPECT_EQ(synts::util::lock_rank_detail::held_count(), 1u);
#endif
    }
    signaller.join();
#if SYNTS_LOCK_RANK_CHECKS
    EXPECT_EQ(synts::util::lock_rank_detail::held_count(), 0u);
#endif
}

#if SYNTS_LOCK_RANK_CHECKS

TEST(util_lock_rank, inverted_acquisition_aborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    annotated_mutex low(lock_rank::pool_sleep, "test.inv_low");
    annotated_mutex high(lock_rank::cache_shard, "test.inv_high");
    EXPECT_DEATH(
        {
            const mutex_lock first(high);
            const mutex_lock second(low); // rank 20 under rank 40: inversion
        },
        "lock rank order violation.*test\\.inv_low.*test\\.inv_high");
}

TEST(util_lock_rank, same_rank_nesting_aborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    annotated_mutex a(lock_rank::cancel_tree, "test.same_a");
    annotated_mutex b(lock_rank::cancel_tree, "test.same_b");
    EXPECT_DEATH(
        {
            const mutex_lock first(a);
            const mutex_lock second(b); // equal rank: no order is declared
        },
        "lock rank order violation.*test\\.same_b.*test\\.same_a");
}

TEST(util_lock_rank, live_registry_covers_every_subsystem_mutex)
{
    // Instantiate every mutex-bearing subsystem, then assert each live
    // annotated mutex carries a rank the table names -- the "rank table
    // covers every annotated mutex" acceptance check, evaluated against
    // reality rather than a hand-maintained list.
    synts::runtime::thread_pool pool(2);
    synts::runtime::experiment_cache cache(4);
    synts::runtime::speculator spec(pool, cache);
    synts::util::cancel_source parent;
    synts::util::cancel_source child{parent.token()};
    synts::obs::metrics_registry registry;
    synts::obs::sampler sampler(registry);
    synts::obs::trace_recorder recorder;
    const synts::workload::workload_registry workloads =
        synts::workload::workload_registry::with_builtins();
    (void)synts::obs::health_monitor::cell_monitor();

    const auto live = synts::util::lock_rank_detail::live_mutexes();
    // At minimum: 2 pool queues + pool sleep + cache shards + speculator +
    // 2 cancel states + metrics + sampler x2 + trace + registry + health.
    ASSERT_GT(live.size(), 10u);
    std::set<lock_rank> ranks_seen;
    for (const auto& m : live) {
        EXPECT_NE(lock_rank_name(m.rank), nullptr)
            << "mutex \"" << m.name << "\" has rank "
            << static_cast<unsigned>(m.rank) << " not in the table";
        EXPECT_NE(m.name, nullptr);
        ranks_seen.insert(m.rank);
    }
    // The instantiated set above exercises every row of the table.
    EXPECT_GE(ranks_seen.size(), 10u);
}

TEST(util_lock_rank, release_of_unheld_lock_aborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    annotated_mutex m(lock_rank::cancel_tree, "test.unheld");
    EXPECT_DEATH(synts::util::lock_rank_detail::note_released(
                     lock_rank::cancel_tree, "test.unheld"),
                 "does not hold");
    (void)m;
}

#endif // SYNTS_LOCK_RANK_CHECKS

TEST(util_thread_safety, concurrent_lockers_in_rank_order_are_clean)
{
    // TSan target (the thread-sanitizer CI job runs this suite with the
    // rank checks forced on): many threads hammering a correct two-level
    // nesting must neither race nor trip the detector.
    annotated_mutex outer(lock_rank::pool_sleep, "test.conc_outer");
    annotated_mutex inner(lock_rank::pool_queue, "test.conc_inner");
    std::uint64_t guarded = 0;
    std::vector<std::thread> threads;
    constexpr int thread_count = 8;
    constexpr int iterations = 500;
    threads.reserve(thread_count);
    for (int t = 0; t < thread_count; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < iterations; ++i) {
                const mutex_lock a(outer);
                const mutex_lock b(inner);
                ++guarded;
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_EQ(guarded, static_cast<std::uint64_t>(thread_count) * iterations);
}

TEST(util_thread_safety, release_build_wrapper_adds_no_state)
{
#if SYNTS_LOCK_RANK_CHECKS
    GTEST_SKIP() << "rank bookkeeping resident (debug/forced build)";
#else
    // The zero-overhead claim, pinned structurally: without checks the
    // wrapper is exactly a std::mutex (bench_locks pins the time side).
    static_assert(sizeof(annotated_mutex) == sizeof(std::mutex));
    static_assert(sizeof(annotated_shared_mutex) == sizeof(std::shared_mutex));
#endif
}

} // namespace
