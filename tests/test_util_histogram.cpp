// Tests for util/histogram.

#include <gtest/gtest.h>

#include "util/histogram.h"
#include "util/rng.h"

namespace {

using namespace synts::util;

TEST(histogram, rejects_bad_construction)
{
    EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
    EXPECT_THROW(histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(histogram, bins_values_correctly)
{
    histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(5.0);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.count_at(0), 1u);
    EXPECT_EQ(h.count_at(9), 1u);
    EXPECT_EQ(h.count_at(5), 1u);
}

TEST(histogram, clamps_out_of_range)
{
    histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.count_at(0), 1u);
    EXPECT_EQ(h.count_at(9), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(histogram, exceedance_boundaries)
{
    histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) {
        h.add(static_cast<double>(i) + 0.5);
    }
    EXPECT_DOUBLE_EQ(h.exceedance(-1.0), 1.0);
    EXPECT_DOUBLE_EQ(h.exceedance(10.0), 0.0);
    EXPECT_NEAR(h.exceedance(5.0), 0.5, 0.05);
}

TEST(histogram, exceedance_monotone_non_increasing)
{
    xoshiro256 rng(3);
    histogram h(0.0, 1.0, 64);
    for (int i = 0; i < 5000; ++i) {
        h.add(rng.uniform());
    }
    double previous = 1.1;
    for (double x = -0.1; x <= 1.1; x += 0.01) {
        const double e = h.exceedance(x);
        ASSERT_LE(e, previous + 1e-12);
        previous = e;
    }
}

TEST(histogram, quantile_uniform_data)
{
    xoshiro256 rng(9);
    histogram h(0.0, 1.0, 100);
    for (int i = 0; i < 100000; ++i) {
        h.add(rng.uniform());
    }
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(histogram, quantile_exceedance_roundtrip)
{
    xoshiro256 rng(11);
    histogram h(0.0, 2.0, 128);
    for (int i = 0; i < 20000; ++i) {
        h.add(rng.uniform(0.0, 2.0));
    }
    for (const double q : {0.1, 0.5, 0.9}) {
        const double x = h.quantile(q);
        EXPECT_NEAR(h.exceedance(x), 1.0 - q, 0.03);
    }
}

TEST(histogram, normalized_sums_to_one)
{
    histogram h(0.0, 1.0, 16);
    for (int i = 0; i < 100; ++i) {
        h.add(0.03 * i);
    }
    double total = 0.0;
    for (const double m : h.normalized()) {
        total += m;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(histogram, empty_histogram_behaviors)
{
    histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.exceedance(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    for (const double m : h.normalized()) {
        EXPECT_DOUBLE_EQ(m, 0.0);
    }
}

TEST(histogram, ascii_render_nonempty)
{
    histogram h(0.0, 1.0, 4);
    h.add(0.1);
    const std::string render = h.ascii_render();
    EXPECT_NE(render.find('#'), std::string::npos);
}

TEST(integer_histogram, counts_and_clamps)
{
    integer_histogram h(4);
    h.add(0);
    h.add(4);
    h.add(10); // clamps to 4
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.count_at(0), 1u);
    EXPECT_EQ(h.count_at(4), 2u);
    EXPECT_EQ(h.bucket_count(), 5u);
}

TEST(histogram, bulk_add_matches_scalar_adds)
{
    xoshiro256 rng(17);
    std::vector<double> samples;
    samples.reserve(2000);
    for (int i = 0; i < 2000; ++i) {
        // Span well past both edges so clamping paths are exercised.
        samples.push_back(rng.uniform() * 14.0 - 2.0);
    }

    histogram scalar(0.0, 10.0, 64);
    for (const double v : samples) {
        scalar.add(v);
    }
    histogram bulk(0.0, 10.0, 64);
    bulk.add(std::span<const double>(samples));

    EXPECT_EQ(bulk.total(), scalar.total());
    for (std::size_t i = 0; i < scalar.bin_count(); ++i) {
        EXPECT_EQ(bulk.count_at(i), scalar.count_at(i)) << "bin " << i;
    }
}

TEST(histogram, bulk_add_edge_bins)
{
    // Exact edge cases: below lo -> bin 0, at hi and above -> last bin,
    // exactly lo -> bin 0, last interior boundary -> last bin.
    const std::vector<double> edges = {-1e9, -0.001, 0.0, 9.999, 10.0, 1e9};
    histogram scalar(0.0, 10.0, 10);
    for (const double v : edges) {
        scalar.add(v);
    }
    histogram bulk(0.0, 10.0, 10);
    bulk.add(std::span<const double>(edges));
    for (std::size_t i = 0; i < scalar.bin_count(); ++i) {
        EXPECT_EQ(bulk.count_at(i), scalar.count_at(i)) << "bin " << i;
    }
    EXPECT_EQ(bulk.count_at(0), 3u);
    EXPECT_EQ(bulk.count_at(9), 3u);
}

TEST(histogram, bulk_add_empty_span_is_noop)
{
    histogram h(0.0, 1.0, 4);
    h.add(std::span<const double>());
    EXPECT_EQ(h.total(), 0u);
}

TEST(histogram, bulk_add_float_matches_widened_scalar_adds)
{
    xoshiro256 rng(29);
    std::vector<float> samples;
    samples.reserve(1500);
    for (int i = 0; i < 1500; ++i) {
        samples.push_back(static_cast<float>(rng.uniform() * 14.0 - 2.0));
    }

    // The float overload must bin exactly as add(double(v)) would -- the
    // sampling traces store float delays, and their histograms must agree
    // with the double-path histograms built from the same values.
    histogram scalar(0.0, 10.0, 64);
    for (const float v : samples) {
        scalar.add(static_cast<double>(v));
    }
    histogram bulk(0.0, 10.0, 64);
    bulk.add(std::span<const float>(samples));

    EXPECT_EQ(bulk.total(), scalar.total());
    for (std::size_t i = 0; i < scalar.bin_count(); ++i) {
        EXPECT_EQ(bulk.count_at(i), scalar.count_at(i)) << "bin " << i;
    }
}

TEST(histogram, add_all_delegates_to_bulk_add)
{
    const std::vector<double> values = {0.5, 1.5, 2.5};
    histogram a(0.0, 4.0, 4);
    a.add_all(std::span<const double>(values));
    histogram b(0.0, 4.0, 4);
    b.add(std::span<const double>(values));
    for (std::size_t i = 0; i < a.bin_count(); ++i) {
        EXPECT_EQ(a.count_at(i), b.count_at(i));
    }
}

TEST(integer_histogram, mean_of_known_data)
{
    integer_histogram h(8);
    h.add(2);
    h.add(4);
    h.add(6);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(integer_histogram, normalized_masses)
{
    integer_histogram h(2);
    h.add(0);
    h.add(0);
    h.add(2);
    h.add(2);
    const auto mass = h.normalized();
    EXPECT_DOUBLE_EQ(mass[0], 0.5);
    EXPECT_DOUBLE_EQ(mass[1], 0.0);
    EXPECT_DOUBLE_EQ(mass[2], 0.5);
}

} // namespace
