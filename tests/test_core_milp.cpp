// Tests for core/milp: the SynTS-MILP model (Eqs. 4.5-4.10) and the exact
// branch-and-bound solver.

#include <gtest/gtest.h>

#include "core/milp.h"
#include "core/solver.h"
#include "solver_fixtures.h"

namespace {

using namespace synts::core;
using synts::test::make_random_instance;

TEST(milp_model, dimensions_and_counts)
{
    auto inst = make_random_instance(4, 7, 6, 3);
    const milp_model model = milp_model::build(inst.input);
    EXPECT_EQ(model.thread_count(), 4u);
    EXPECT_EQ(model.voltage_count(), 7u);
    EXPECT_EQ(model.tsr_count(), 6u);
    EXPECT_EQ(model.binary_variable_count(), 4u * 7u * 6u);
    EXPECT_EQ(model.constraint_count(), 8u); // M one-hot + M t_exec bounds
}

TEST(milp_model, coefficients_match_system_model)
{
    auto inst = make_random_instance(3, 3, 3, 7);
    const milp_model model = milp_model::build(inst.input);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            for (std::size_t k = 0; k < 3; ++k) {
                const thread_metrics m =
                    evaluate_thread(*inst.space, inst.input.workloads[i],
                                    *inst.input.error_models[i], thread_assignment{j, k},
                                    inst.input.params);
                ASSERT_DOUBLE_EQ(model.energy_coeff(i, j, k), m.energy);
                ASSERT_DOUBLE_EQ(model.time_coeff(i, j, k), m.time_ps);
            }
        }
    }
}

TEST(milp_model, objective_matches_evaluate_assignment)
{
    auto inst = make_random_instance(4, 3, 4, 11);
    const milp_model model = milp_model::build(inst.input);
    const std::vector<thread_assignment> assignment(4, thread_assignment{1, 2});
    const interval_solution sol = evaluate_assignment(inst.input, assignment);
    EXPECT_NEAR(model.objective(assignment), sol.weighted_cost,
                1e-9 * sol.weighted_cost);
}

TEST(milp_model, feasibility_checks)
{
    auto inst = make_random_instance(2, 2, 2, 13);
    const milp_model model = milp_model::build(inst.input);
    EXPECT_TRUE(model.is_feasible(std::vector<thread_assignment>{{0, 0}, {1, 1}}));
    EXPECT_FALSE(model.is_feasible(std::vector<thread_assignment>{{0, 0}}));
    EXPECT_FALSE(model.is_feasible(std::vector<thread_assignment>{{0, 0}, {2, 1}}));
}

TEST(milp_model, lp_string_structure)
{
    auto inst = make_random_instance(2, 2, 2, 17);
    const milp_model model = milp_model::build(inst.input);
    const std::string lp = model.to_lp_string();
    EXPECT_NE(lp.find("Minimize"), std::string::npos);
    EXPECT_NE(lp.find("Subject To"), std::string::npos);
    EXPECT_NE(lp.find("Binaries"), std::string::npos);
    EXPECT_NE(lp.find("t_exec"), std::string::npos);
    EXPECT_NE(lp.find("onehot_0"), std::string::npos);
    EXPECT_NE(lp.find("onehot_1"), std::string::npos);
    EXPECT_NE(lp.find("texec_bound_1"), std::string::npos);
    EXPECT_NE(lp.find("x_1_1_1"), std::string::npos);
    EXPECT_NE(lp.find("End"), std::string::npos);
}

class milp_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(milp_property, branch_and_bound_equals_poly)
{
    for (const auto& [m, q, s] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{2, 3, 3},
          {4, 4, 4},
          {6, 3, 3},
          {3, 7, 6}}) {
        auto inst = make_random_instance(m, q, s, GetParam() * 211 + m + q + s);
        const interval_solution bnb = solve_branch_and_bound(inst.input);
        const interval_solution poly = solve_synts_poly(inst.input);
        ASSERT_NEAR(bnb.weighted_cost, poly.weighted_cost,
                    1e-9 * std::max(1.0, poly.weighted_cost))
            << "M=" << m << " Q=" << q << " S=" << s;
    }
}

TEST_P(milp_property, branch_and_bound_prunes)
{
    auto inst = make_random_instance(5, 5, 4, GetParam() * 7 + 100);
    (void)solve_branch_and_bound(inst.input);
    const branch_and_bound_stats stats = last_branch_and_bound_stats();
    EXPECT_GT(stats.nodes_expanded, 0u);
    EXPECT_GT(stats.nodes_pruned, 0u);
    // Without pruning the tree has (QS)^M ~ 3.2M leaves; expansion must be
    // far smaller.
    EXPECT_LT(stats.nodes_expanded, 1000000u);
}

INSTANTIATE_TEST_SUITE_P(seeds, milp_property,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

} // namespace
